"""Tests for the sharded serving fabric (repro.fabric).

Covers the subsystem's acceptance criteria: rendezvous placement is
deterministic with minimal movement on shard add/remove, the router's
``query_all``/``query_batch`` over N shards return bit-identical
frames and segment metrics to a single-node service over the same
streams, and a live stream migrated mid-ingest (checkpoint -> copy ->
fence -> recover -> resume) answers identically to one that never
moved -- in both index modes -- with stale source sessions fenced by
``StaleEpochError``.  Plus the satellites: aggregated observability
merges and the aggregated unknown-stream ``KeyError``.
"""

import numpy as np
import pytest

from repro.core.system import FocusSystem
from repro.fabric import (
    FabricRouter,
    MigrationError,
    PlacementConflictError,
    PlacementTable,
    ShardNode,
    migrate_stream,
    rendezvous_shard,
)
from repro.serve.cache import STAT_KINDS, VerificationCache
from repro.serve.planner import QueryRequest
from repro.serve.service import COUNTER_KINDS, merge_counters
from repro.storage.docstore import DocumentStore
from repro.storage.journal import (
    StaleEpochError,
    committed_checkpoint,
    fenced_streams,
    journaled_streams,
    reset_stream,
)

FABRIC_STREAMS = ["lausanne", "auburn_c", "jacksonh"]


def frame_aligned_chunks(table, pieces=4):
    """Split a table into stream-ordered, frame-aligned chunks."""
    frames = table.frame_idx
    bounds = [0]
    for raw in np.linspace(0, len(table), pieces + 1).astype(int)[1:-1]:
        stop = int(raw)
        while 0 < stop < len(table) and frames[stop] == frames[stop - 1]:
            stop += 1
        if stop > bounds[-1]:
            bounds.append(stop)
    bounds.append(len(table))
    return [table.slice(a, b) for a, b in zip(bounds, bounds[1:]) if b > a]


@pytest.fixture(scope="module")
def fabric_tables(table_factory):
    return {s: table_factory(s, 30.0, 10.0) for s in FABRIC_STREAMS}


def build_single(tables, config, index_mode):
    system = FocusSystem()
    for name, table in tables.items():
        system.open_stream(name, fps=10.0, config=config, index_mode=index_mode)
        for chunk in frame_aligned_chunks(table):
            system.append(name, chunk)
    return system


def build_fabric(tables, config, index_mode, num_shards=2, durable=True,
                 meta_store=None):
    shards = [ShardNode("shard-%d" % i) for i in range(num_shards)]
    router = FabricRouter(shards, meta_store=meta_store)
    for name, table in tables.items():
        router.open_stream(
            name, fps=10.0, config=config, index_mode=index_mode, durable=durable
        )
        for chunk in frame_aligned_chunks(table):
            router.append(name, chunk)
    return router


def assert_same_slices(left, right):
    """Frames and segment metrics bit-identical per stream."""
    assert sorted(left.slices) == sorted(right.slices)
    for name in left.slices:
        np.testing.assert_array_equal(
            left.slices[name].frames, right.slices[name].frames
        )
        assert left.slices[name].metrics == right.slices[name].metrics


# ---------------------------------------------------------------------------
# placement
# ---------------------------------------------------------------------------

class TestPlacement:
    SHARDS = ["shard-%d" % i for i in range(5)]
    STREAMS = ["cam-%03d" % i for i in range(200)]

    def test_rendezvous_deterministic(self):
        a = PlacementTable.build(self.SHARDS, self.STREAMS)
        b = PlacementTable.build(self.SHARDS, self.STREAMS)
        assert a.assignments == b.assignments
        for stream, shard in a.assignments.items():
            assert shard == rendezvous_shard(stream, self.SHARDS)

    def test_spreads_streams(self):
        table = PlacementTable.build(self.SHARDS, self.STREAMS)
        held = {len(table.streams_on(s)) for s in self.SHARDS}
        assert all(n > 0 for n in held)  # 200 streams land on all 5 shards

    def test_minimal_movement_on_add(self):
        before = PlacementTable.build(self.SHARDS, self.STREAMS)
        after = before.with_shards(self.SHARDS + ["shard-new"])
        moved = before.moved_streams(after)
        # every moved stream moved *to* the new shard, nothing shuffled
        # between surviving shards
        assert moved, "a new shard should win some streams"
        assert all(dst == "shard-new" for _, dst in moved.values())
        assert after.version == before.version + 1

    def test_minimal_movement_on_remove(self):
        before = PlacementTable.build(self.SHARDS, self.STREAMS)
        removed = self.SHARDS[2]
        after = before.with_shards([s for s in self.SHARDS if s != removed])
        moved = before.moved_streams(after)
        # exactly the removed shard's streams moved, nobody else
        assert set(moved) == set(before.streams_on(removed))
        assert all(src == removed for src, _ in moved.values())

    def test_assign_without_pin_stays_rebalance_eligible(self):
        table = PlacementTable.build(self.SHARDS, self.STREAMS)
        stream = self.STREAMS[0]
        natural = table.shard_of(stream)
        moved = table.pin(stream, next(s for s in self.SHARDS if s != natural))
        back = moved.assign(stream, natural, pin=False)
        assert back.shard_of(stream) == natural
        assert stream not in back.pinned  # the pin was dropped

    def test_pin_survives_shard_add_and_falls_back_on_remove(self):
        table = PlacementTable.build(self.SHARDS, self.STREAMS)
        stream = self.STREAMS[0]
        natural = table.shard_of(stream)
        other = next(s for s in self.SHARDS if s != natural)
        pinned = table.pin(stream, other)
        assert pinned.shard_of(stream) == other
        assert pinned.version == table.version + 1
        grown = pinned.with_shards(self.SHARDS + ["shard-new"])
        assert grown.shard_of(stream) == other  # pin holds across growth
        shrunk = pinned.with_shards([s for s in self.SHARDS if s != other])
        assert shrunk.shard_of(stream) != other  # pin target gone: rendezvous
        assert stream not in shrunk.pinned

    def test_with_streams_noop_keeps_version(self):
        table = PlacementTable.build(self.SHARDS, self.STREAMS[:3])
        assert table.with_streams(self.STREAMS[0]) is table

    def test_adopt_shards_moves_nothing_but_opens_the_new_shard(self):
        before = PlacementTable.build(self.SHARDS, self.STREAMS)
        adopted = before.adopt_shards(self.SHARDS + ["shard-new"])
        assert adopted.assignments == before.assignments  # data stays put
        assert adopted.version == before.version + 1
        assert before.adopt_shards(self.SHARDS) is before  # no-op
        # new streams rendezvous over the adopted set: shard-new is live
        grown = adopted.with_streams(*("fresh-%03d" % i for i in range(50)))
        assert grown.streams_on("shard-new")

    def test_history_is_compacted_to_trailing_window(self):
        from repro.fabric.placement import HISTORY_KEEP

        store = DocumentStore()
        table = PlacementTable.build(self.SHARDS)
        table.save(store)
        for i in range(HISTORY_KEEP + 5):
            table = table.with_streams("cam-%03d" % i)
            table.save(store)
        versions = [t.version for t in PlacementTable.history(store)]
        assert len(versions) == HISTORY_KEEP
        assert versions[-1] == table.version
        assert PlacementTable.load(store) == table

    def test_persistence_roundtrip_and_version_cas(self):
        store = DocumentStore()
        v1 = PlacementTable.build(self.SHARDS, self.STREAMS[:10])
        v1.save(store)
        v2 = v1.pin(self.STREAMS[0], self.SHARDS[1])
        v2.save(store)
        loaded = PlacementTable.load(store)
        assert loaded == v2
        assert [t.version for t in PlacementTable.history(store)] == [1, 2]
        # a stale writer (same or older version) must not overwrite
        with pytest.raises(PlacementConflictError):
            v2.save(store)
        with pytest.raises(PlacementConflictError):
            v1.save(store)

    def test_unplaced_stream_raises(self):
        table = PlacementTable.build(self.SHARDS)
        with pytest.raises(KeyError, match="not placed"):
            table.shard_of("ghost")


# ---------------------------------------------------------------------------
# scatter-gather routing vs a single node
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("index_mode", ["lazy", "materialized"])
class TestRouterBitIdentity:
    def test_query_all_matches_single_node(
        self, fabric_tables, live_config, index_mode
    ):
        single = build_single(fabric_tables, live_config, index_mode)
        router = build_fabric(fabric_tables, live_config, index_mode)
        for clazz in ("car", "pedestrian"):
            lone = single.query_all(clazz)
            fleet = router.query_all(clazz)
            assert_same_slices(lone, fleet)
            assert fleet.class_id == lone.class_id
            # evidence-weighted aggregates follow from identical slices
            assert fleet.precision == pytest.approx(lone.precision, nan_ok=True)
            assert fleet.recall == pytest.approx(lone.recall, nan_ok=True)

    def test_query_batch_matches_single_node(
        self, fabric_tables, live_config, index_mode
    ):
        single = build_single(fabric_tables, live_config, index_mode)
        router = build_fabric(fabric_tables, live_config, index_mode)
        requests = [
            QueryRequest("car"),
            QueryRequest("car", streams=FABRIC_STREAMS[:2], kx=1),
            QueryRequest("pedestrian", time_range=(5.0, 25.0)),
        ]
        lone = single.query_batch(requests)
        fleet = router.query_batch(requests)
        assert len(fleet) == len(lone)
        for left, right in zip(lone, fleet):
            assert_same_slices(left, right)

    def test_single_stream_query_routes(self, fabric_tables, live_config, index_mode):
        single = build_single(fabric_tables, live_config, index_mode)
        router = build_fabric(fabric_tables, live_config, index_mode)
        for name in FABRIC_STREAMS:
            lone = single.query(name, "car")
            routed = router.query(name, "car")
            np.testing.assert_array_equal(lone.frames, routed.frames)
            assert routed.metrics == lone.metrics


class TestRouterStatistics:
    def test_round_statistics_aggregate_across_shards(
        self, fabric_tables, live_config
    ):
        single = build_single(fabric_tables, live_config, "materialized")
        router = build_fabric(fabric_tables, live_config, "materialized")
        lone = single.query_all("car")
        fleet = router.query_all("car")
        # candidate totals are placement-independent; fresh verification
        # sums across the shards' independent rounds
        assert fleet.candidates == lone.candidates
        assert fleet.gt_inferences == lone.gt_inferences
        assert fleet.total_frames == lone.total_frames
        repeat = router.query_all("car")
        assert repeat.gt_inferences == 0  # per-shard caches serve the repeat
        assert repeat.cache_hits == fleet.candidates - 0

    def test_fleet_latency_is_max_over_shards(self, fabric_tables, live_config):
        router = build_fabric(fabric_tables, live_config, "materialized")
        grouped = {}
        for name in FABRIC_STREAMS:
            grouped.setdefault(router.shard_of(name).shard_id, []).append(name)
        if len(grouped) < 2:
            pytest.skip("rendezvous put every stream on one shard")
        per_shard = [
            router.query_all("car", streams=subset).latency_seconds
            for subset in grouped.values()
        ]
        fleet = router.query_all("car").latency_seconds
        assert fleet <= sum(per_shard) + 1e-12

    def test_placement_adopts_preexisting_streams(self, fabric_tables, live_config):
        shard = ShardNode("adopter")
        table = fabric_tables["lausanne"]
        shard.open_stream(
            "lausanne", fps=10.0, config=live_config, durable=False
        )
        shard.append("lausanne", table)
        router = FabricRouter([shard, ShardNode("empty")])
        assert router.placement.shard_of("lausanne") == "adopter"
        assert "lausanne" in router.placement.pinned
        assert len(router.query_all("car").slices) == 1


# ---------------------------------------------------------------------------
# unknown streams: one aggregated KeyError (satellite)
# ---------------------------------------------------------------------------

class TestUnknownStreams:
    def test_router_lists_all_missing(self, fabric_tables, live_config):
        router = build_fabric(fabric_tables, live_config, "lazy")
        with pytest.raises(KeyError) as err:
            router.query_all("car", streams=["ghost-b", "lausanne", "ghost-a"])
        assert "ghost-a, ghost-b" in str(err.value)

    def test_planner_aggregates_across_batch(self, fabric_tables, live_config):
        single = build_single(fabric_tables, live_config, "lazy")
        with pytest.raises(KeyError) as err:
            single.query_batch(
                [
                    QueryRequest("car", streams=["ghost-b"]),
                    QueryRequest("car", streams=["lausanne", "ghost-a"]),
                ]
            )
        assert "ghost-a, ghost-b" in str(err.value)

    def test_checkpoint_lists_all_missing(self, fabric_tables, live_config):
        single = build_single(fabric_tables, live_config, "lazy")
        with pytest.raises(KeyError) as err:
            single.checkpoint(DocumentStore(), streams=["ghost-b", "ghost-a"])
        assert "ghost-a, ghost-b" in str(err.value)

    def test_router_checkpoint_lists_all_missing(self, fabric_tables, live_config):
        router = build_fabric(fabric_tables, live_config, "lazy")
        with pytest.raises(KeyError) as err:
            router.checkpoint(streams=["ghost-b", "lausanne", "ghost-a"])
        assert "ghost-a, ghost-b" in str(err.value)


# ---------------------------------------------------------------------------
# fleet durability: checkpoint + recover through the router
# ---------------------------------------------------------------------------

class TestFleetDurability:
    def test_checkpoint_streams_per_shard_epochs(self, fabric_tables, live_config):
        router = build_fabric(fabric_tables, live_config, "materialized")
        outcomes = router.checkpoint_streams()
        assert [o.stream for o in outcomes] == sorted(FABRIC_STREAMS)
        assert all(o.durable and o.committed and o.epoch == 1 for o in outcomes)
        for name in FABRIC_STREAMS:
            marker = committed_checkpoint(router.shard_of(name).store, name)
            assert marker is not None and marker["epoch"] == 1

    def test_fleet_restart_recovers_bit_identical(self, fabric_tables, live_config):
        meta = DocumentStore()
        router = build_fabric(
            fabric_tables, live_config, "materialized", meta_store=meta
        )
        router.checkpoint(streams=FABRIC_STREAMS[:1])  # one committed, two journal-only
        before = router.query_all("car")
        # simulated fleet crash: fresh systems over the surviving stores;
        # the reborn router reloads the persisted placement table
        reborn = FabricRouter(
            [
                ShardNode(sid, store=router.shard(sid).store)
                for sid in router.shard_ids()
            ],
            meta_store=meta,
        )
        assert reborn.placement == router.placement
        recovered = reborn.recover()
        assert recovered == sorted(FABRIC_STREAMS)
        after = reborn.query_all("car")
        assert_same_slices(before, after)
        for name in FABRIC_STREAMS:
            assert reborn.placement.shard_of(name) == router.placement.shard_of(name)
        # recovery pins only where rendezvous disagrees with the data's
        # home -- streams placed by hash stay rebalance-eligible
        assert reborn.placement.pinned == router.placement.pinned

    def test_restarted_router_with_grown_fleet_uses_new_shard(
        self, fabric_tables, live_config
    ):
        """A shard added on restart is adopted into the persisted
        placement: existing streams stay put, new ones can land on it."""
        meta = DocumentStore()
        router = build_fabric(
            fabric_tables, live_config, "lazy", meta_store=meta
        )
        before = dict(router.placement.assignments)
        grown = FabricRouter(
            [router.shard(sid) for sid in router.shard_ids()]
            + [ShardNode("shard-new")],
            meta_store=meta,
        )
        assert dict(grown.placement.assignments) == before
        assert "shard-new" in grown.placement.shards
        landed = {
            grown.placement.with_streams("probe-%03d" % i).shard_of("probe-%03d" % i)
            for i in range(50)
        }
        assert "shard-new" in landed

    def test_losing_router_cannot_leapfrog_the_placement_cas(
        self, fabric_tables, live_config
    ):
        """A router whose save lost the version race must not adopt its
        unpersisted table: its next change would out-version and
        silently overwrite the winner's mapping."""
        meta = DocumentStore()
        shards = [ShardNode("shard-0"), ShardNode("shard-1")]
        a = FabricRouter(shards, meta_store=meta)
        b = FabricRouter(shards, meta_store=meta)
        a.open_stream(
            "lausanne", fps=10.0, config=live_config, durable=False
        )
        with pytest.raises(PlacementConflictError):
            b.open_stream(
                "oxford", fps=10.0, config=live_config, durable=False,
                wal_reset=False,
            )
        # b stayed at its committed view; the store still knows lausanne
        assert "oxford" not in b.placement.assignments
        assert "lausanne" in PlacementTable.load(meta).assignments

    def test_router_refuses_placement_with_unreachable_streams(
        self, fabric_tables, live_config
    ):
        meta = DocumentStore()
        router = build_fabric(
            fabric_tables, live_config, "lazy", meta_store=meta
        )
        survivor = router.placement.streams_on(router.shard_ids()[0])
        if not survivor or len(survivor) == len(FABRIC_STREAMS):
            pytest.skip("rendezvous put every stream on one shard")
        with pytest.raises(ValueError, match="not in this fabric"):
            FabricRouter([router.shard(router.shard_ids()[0])], meta_store=meta)


# ---------------------------------------------------------------------------
# live migration
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("index_mode", ["lazy", "materialized"])
class TestMigrationBitIdentity:
    def test_migrated_stream_answers_like_one_that_never_moved(
        self, fabric_tables, live_config, index_mode
    ):
        control = build_single(fabric_tables, live_config, index_mode)
        shards = [ShardNode("shard-0"), ShardNode("shard-1")]
        router = FabricRouter(shards, meta_store=DocumentStore())
        chunked = {
            name: frame_aligned_chunks(table)
            for name, table in fabric_tables.items()
        }
        for name in FABRIC_STREAMS:
            router.open_stream(
                name, fps=10.0, config=live_config, index_mode=index_mode
            )
        # first half of every stream, then move one stream mid-ingest
        for name, chunks in chunked.items():
            for chunk in chunks[: len(chunks) // 2]:
                router.append(name, chunk)
        victim = FABRIC_STREAMS[0]
        source_id = router.placement.shard_of(victim)
        target_id = next(s for s in router.shard_ids() if s != source_id)
        version_before = router.placement.version
        report = router.migrate(victim, target_id)
        assert report.source_shard == source_id
        assert report.target_shard == target_id
        assert router.placement.shard_of(victim) == target_id
        assert victim in router.placement.pinned
        assert router.placement.version == version_before + 1
        # ingest resumes on the target through the same router surface
        for name, chunks in chunked.items():
            for chunk in chunks[len(chunks) // 2:]:
                router.append(name, chunk)
        for clazz in ("car", "pedestrian"):
            assert_same_slices(control.query_all(clazz), router.query_all(clazz))
        moved = router.shard(target_id).system.handle(victim)
        never_moved = control.handle(victim)
        assert moved.watermark_s == never_moved.watermark_s
        assert len(moved.table) == len(never_moved.table)

    def test_journal_suffix_replay_without_fresh_checkpoint(
        self, fabric_tables, live_config, index_mode
    ):
        """checkpoint=False ships the last committed epoch plus the
        journal suffix; the target replays the suffix chunks."""
        control = build_single(fabric_tables, live_config, index_mode)
        source, target = ShardNode("src"), ShardNode("dst")
        name = FABRIC_STREAMS[0]
        chunks = frame_aligned_chunks(fabric_tables[name])
        source.open_stream(name, fps=10.0, config=live_config, index_mode=index_mode)
        source.append(name, chunks[0])
        source.checkpoint(streams=[name])
        for chunk in chunks[1:]:
            source.append(name, chunk)  # journaled, never checkpointed
        report = migrate_stream(source, target, name, checkpoint=False)
        assert report.epoch == 1
        assert report.replayed_chunks == len(chunks) - 1
        single = control.query(name, "car")
        routed = target.system.query(name, "car")
        np.testing.assert_array_equal(single.frames, routed.frames)
        assert routed.metrics == single.metrics


class TestMigrationFencing:
    def _migrated_pair(self, fabric_tables, live_config):
        source, target = ShardNode("src"), ShardNode("dst")
        name = FABRIC_STREAMS[0]
        chunks = frame_aligned_chunks(fabric_tables[name])
        source.open_stream(name, fps=10.0, config=live_config,
                           index_mode="materialized")
        for chunk in chunks[:2]:
            source.append(name, chunk)
        zombie = source.handle(name).ingestor
        migrate_stream(source, target, name)
        return source, target, name, zombie, chunks

    def test_zombie_source_session_is_fenced(self, fabric_tables, live_config):
        source, target, name, zombie, _ = self._migrated_pair(
            fabric_tables, live_config
        )
        # the pre-migration session object lost the epoch CAS: its next
        # durable checkpoint must be rejected, not merged
        with pytest.raises(StaleEpochError):
            zombie.checkpoint(source.store)
        # and the source system no longer serves the stream at all
        with pytest.raises(KeyError, match="not been ingested"):
            source.system.query(name, "car")
        assert fenced_streams(source.store) == [name]

    def test_source_recovery_skips_fenced_stream(self, fabric_tables, live_config):
        source, target, name, _, _ = self._migrated_pair(fabric_tables, live_config)
        assert journaled_streams(source.store) == []
        reborn = ShardNode("src-reborn", store=source.store)
        assert reborn.recover() == []  # nothing resurrects on the old shard
        assert reborn.fenced() == [name]

    def test_zombie_append_does_not_resurrect_fenced_stream(
        self, fabric_tables, live_config
    ):
        """A zombie push after the fence recreates the journal
        collection; its dead-lineage records must not drag the stream
        back into whole-shard recovery (which would abort it)."""
        source, _, name, zombie, chunks = self._migrated_pair(
            fabric_tables, live_config
        )
        zombie.push(chunks[2])  # journals into the fenced source store
        assert journaled_streams(source.store) == []
        reborn = ShardNode("src-reborn", store=source.store)
        assert reborn.recover() == []

    def test_direct_recover_of_fenced_stream_raises_clearly(
        self, fabric_tables, live_config
    ):
        from repro.core.streaming import StreamIngestor

        source, _, name, _, _ = self._migrated_pair(fabric_tables, live_config)
        # the system-level recover no longer lists the stream at all ...
        with pytest.raises(KeyError, match="no durable stream state"):
            FocusSystem().recover(source.store, streams=[name])
        # ... and forcing a session-level recover names the migration
        with pytest.raises(StaleEpochError, match="migrated away"):
            StreamIngestor.recover(source.store, name)

    def test_migrate_back_after_fence(self, fabric_tables, live_config):
        """A fence tombstone does not block migrating the stream back."""
        source, target, name, _, chunks = self._migrated_pair(
            fabric_tables, live_config
        )
        target.append(name, chunks[2])
        report = migrate_stream(target, source, name)
        assert report.target_shard == "src"
        assert name in source.system.streams()
        for chunk in chunks[3:]:
            source.append(name, chunk)
        assert source.handle(name).watermark_s == pytest.approx(
            float(fabric_tables[name].time_s.max())
        )

    def test_reset_stream_clears_fence_for_fresh_lineage(
        self, fabric_tables, live_config
    ):
        source, _, name, _, _ = self._migrated_pair(fabric_tables, live_config)
        reset_stream(source.store, name)
        assert fenced_streams(source.store) == []
        handle = source.open_stream(
            name, fps=10.0, config=live_config, index_mode="materialized"
        )
        assert handle.live


class TestSpecializedModelMigration:
    def _spec_config(self, spec_model):
        from repro.core.config import FocusConfig

        return FocusConfig(model=spec_model, k=2, cluster_threshold=0.12)

    def test_specialized_stream_migrates_with_config_handover(
        self, fabric_tables, spec_model
    ):
        """A stream ingested with a specialized (non-zoo) model -- whose
        config recovery cannot rebuild from the journaled descriptor --
        migrates because the live config is handed to the target."""
        config = self._spec_config(spec_model)
        source, target = ShardNode("src"), ShardNode("dst")
        name = "auburn_c"
        chunks = frame_aligned_chunks(fabric_tables[name])
        source.open_stream(name, fps=10.0, config=config, index_mode="materialized")
        for chunk in chunks[:2]:
            source.append(name, chunk)
        before = source.system.query(name, "car")
        migrate_stream(source, target, name)
        after = target.system.query(name, "car")
        np.testing.assert_array_equal(before.frames, after.frames)
        assert name not in source.system.streams()
        # ... and the shard-level recover surface forwards configs too
        crashed = ShardNode("dst-reborn", store=target.store)
        assert crashed.recover(configs={name: config}) == [name]

    def test_failed_target_recovery_leaves_source_serving(
        self, fabric_tables, spec_model, monkeypatch
    ):
        """Migration must be atomic from the fleet's point of view: if
        target recovery blows up, the source keeps the stream and the
        target store is wiped -- never a stream owned by no shard."""
        config = self._spec_config(spec_model)
        source, target = ShardNode("src"), ShardNode("dst")
        name = "auburn_c"
        chunks = frame_aligned_chunks(fabric_tables[name])
        source.open_stream(name, fps=10.0, config=config, index_mode="materialized")
        source.append(name, chunks[0])
        before = source.system.query(name, "car")
        monkeypatch.setattr(
            target.system, "recover",
            lambda *a, **kw: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        with pytest.raises(RuntimeError, match="boom"):
            migrate_stream(source, target, name)
        assert name in source.system.streams()  # still served at the source
        assert journaled_streams(target.store) == []  # copy wiped
        np.testing.assert_array_equal(
            source.system.query(name, "car").frames, before.frames
        )
        # the aborted attempt left no fence: a retry can succeed
        migrate_stream(source, ShardNode("dst2"), name)

    def test_failed_recovery_onto_fenced_target_restores_its_fence(
        self, fabric_tables, live_config, monkeypatch
    ):
        """Migrating back onto a shard that holds a fence tombstone, and
        failing during recovery, must put the fence back -- otherwise
        the zombie that fence was holding off wins its epoch CAS again."""
        source, target = ShardNode("src"), ShardNode("dst")
        name = FABRIC_STREAMS[0]
        chunks = frame_aligned_chunks(fabric_tables[name])
        source.open_stream(name, fps=10.0, config=live_config,
                           index_mode="materialized")
        source.append(name, chunks[0])
        zombie = source.handle(name).ingestor
        migrate_stream(source, target, name)  # src now fenced
        target.append(name, chunks[1])
        monkeypatch.setattr(
            source.system, "recover",
            lambda *a, **kw: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        with pytest.raises(RuntimeError, match="boom"):
            migrate_stream(target, source, name)  # back onto fenced src
        assert fenced_streams(source.store) == [name]  # fence survived
        with pytest.raises(StaleEpochError):
            zombie.checkpoint(source.store)  # still held off
        assert name in target.system.streams()  # target keeps serving


class TestMigrationGuards:
    def test_non_durable_session_cannot_migrate(self, fabric_tables, live_config):
        source, target = ShardNode("src"), ShardNode("dst")
        name = FABRIC_STREAMS[0]
        source.open_stream(
            name, fps=10.0, config=live_config, durable=False
        )
        with pytest.raises(MigrationError, match="durable"):
            migrate_stream(source, target, name)

    def test_target_with_existing_state_refuses(self, fabric_tables, live_config):
        source, target = ShardNode("src"), ShardNode("dst")
        name = FABRIC_STREAMS[0]
        chunks = frame_aligned_chunks(fabric_tables[name])
        source.open_stream(name, fps=10.0, config=live_config)
        source.append(name, chunks[0])
        target.open_stream(name, fps=10.0, config=live_config)
        target.system.close_stream(name)
        with pytest.raises(MigrationError, match="already holds durable state"):
            migrate_stream(source, target, name)

    def test_router_rejects_same_shard_migration(self, fabric_tables, live_config):
        router = build_fabric(fabric_tables, live_config, "lazy")
        name = FABRIC_STREAMS[0]
        with pytest.raises(MigrationError, match="already lives"):
            router.migrate(name, router.placement.shard_of(name))

    def test_failed_open_leaves_no_phantom_placement(
        self, fabric_tables, live_config
    ):
        """A shard-side open failure must not commit (or persist) the
        stream's placement -- a placed-but-unserved stream would poison
        every later fleet-wide fan-out."""
        meta = DocumentStore()
        router = build_fabric(
            fabric_tables, live_config, "lazy", meta_store=meta
        )
        version = router.placement.version
        with pytest.raises(ValueError, match="config"):
            router.open_stream("oxford", fps=10.0)  # no config, no tune_on
        assert "oxford" not in router.placement.assignments
        assert router.placement.version == version
        assert PlacementTable.load(meta).version == version
        answer = router.query_all("car")  # fan-out still serves the fleet
        assert sorted(answer.slices) == sorted(FABRIC_STREAMS)


# ---------------------------------------------------------------------------
# observability (satellite)
# ---------------------------------------------------------------------------

class TestObservability:
    def test_cost_summary_totals_are_per_shard_sums(
        self, fabric_tables, live_config
    ):
        router = build_fabric(fabric_tables, live_config, "materialized")
        router.query_all("car")
        broken_down = router.cost_summary(per_shard=True)
        total, per = broken_down["total"], broken_down["per_shard"]
        assert set(per) == set(router.shard_ids())
        for key, value in total.items():
            assert value == pytest.approx(
                sum(shard.get(key, 0.0) for shard in per.values())
            ), key
        assert total["journal-appends"] > 0
        assert router.cost_summary() == total

    def test_cache_stats_merge_recomputes_hit_rate(
        self, fabric_tables, live_config
    ):
        router = build_fabric(fabric_tables, live_config, "materialized")
        router.query_all("car")
        router.query_all("car")
        merged = router.cache_stats(per_shard=True)
        total, per = merged["total"], merged["per_shard"]
        hits = sum(s["hits"] for s in per.values())
        misses = sum(s["misses"] for s in per.values())
        assert total["hits"] == hits
        assert total["hit_rate"] == pytest.approx(hits / (hits + misses))
        assert set(total) == set(STAT_KINDS)

    def test_every_service_counter_is_classified(self):
        service_counters = FocusSystem().service.counters()
        # subset: COUNTER_KINDS also classifies the fabric's wire
        # counters, which only surface through shard cost summaries
        assert set(service_counters) <= set(COUNTER_KINDS)
        assert all(kind in ("sum", "gauge") for kind in COUNTER_KINDS.values())

    def test_every_wire_counter_is_classified(self):
        from repro.fabric.protocol import WIRE_COUNTER_KEYS

        assert set(WIRE_COUNTER_KEYS) <= set(COUNTER_KINDS)
        assert all(COUNTER_KINDS[k] == "sum" for k in WIRE_COUNTER_KEYS)

    def test_merge_counters_rejects_unclassified_keys(self):
        with pytest.raises(KeyError, match="merge semantics"):
            merge_counters([{"mystery-counter": 1.0}])

    def test_merge_stats_rejects_unclassified_keys(self):
        with pytest.raises(KeyError, match="merge semantics"):
            VerificationCache.merge_stats([{"mystery-stat": 1.0}])

    def test_every_cache_stat_is_classified(self):
        assert set(VerificationCache().stats()) == set(STAT_KINDS)

    def test_merge_counters_sums_declared_sums(self):
        merged = merge_counters(
            [{"queries-served": 2.0}, {"queries-served": 3.0}]
        )
        assert merged["queries-served"] == 5.0

    def test_shard_counters_snapshot(self, fabric_tables, live_config):
        router = build_fabric(fabric_tables, live_config, "materialized")
        router.query_all("car")
        for sid in router.shard_ids():
            snap = router.shard(sid).counters()
            assert snap["shard"] == sid
            assert snap["streams"] == snap["live-streams"]
            assert set(snap["gpu"]) == {
                "gpus", "busy-gpu-seconds", "utilization", "queue-depth",
            }


# ---------------------------------------------------------------------------
# scatter-gather merge semantics (regression pins)
# ---------------------------------------------------------------------------

class TestScatterMergeSemantics:
    """Pin the router's gather math: latency is the max over concurrent
    shard legs (they verify in parallel on their own clusters), while
    work counters sum across the shards' independent rounds."""

    @staticmethod
    def _part(latency, gt, candidates, hits, dups, streams):
        from repro.core.query import QueryResult
        from repro.serve.service import MultiStreamAnswer, StreamSlice

        slices = {
            name: StreamSlice(
                stream=name,
                result=QueryResult(
                    class_id=7,
                    token=0,
                    candidate_clusters=[],
                    matched_clusters=[],
                    returned_rows=np.array([], dtype=np.int64),
                    returned_frames=np.array([], dtype=np.int64),
                    gt_inferences=0,
                    gpu_seconds=0.0,
                ),
                metrics=None,
            )
            for name in streams
        }
        return MultiStreamAnswer(
            class_id=7,
            class_name="class-7",
            slices=slices,
            latency_seconds=latency,
            gt_inferences=gt,
            candidates=candidates,
            cache_hits=hits,
            duplicates_coalesced=dups,
        )

    def test_merge_answers_latency_is_max_not_sum(self):
        parts = [
            self._part(0.30, 10, 40, 4, 1, ["a"]),
            self._part(0.05, 3, 10, 2, 0, ["b"]),
            self._part(0.20, 7, 25, 1, 2, ["c", "d"]),
        ]
        merged = FabricRouter._merge_answers(parts)
        assert merged.latency_seconds == 0.30  # max, never 0.55
        assert merged.gt_inferences == 20
        assert merged.candidates == 75
        assert merged.cache_hits == 7
        assert merged.duplicates_coalesced == 3
        assert sorted(merged.slices) == ["a", "b", "c", "d"]
        assert merged.class_id == 7 and merged.class_name == "class-7"

    def test_merge_answers_single_part_is_identity(self):
        part = self._part(0.42, 5, 12, 3, 1, ["solo"])
        merged = FabricRouter._merge_answers([part])
        assert merged.latency_seconds == part.latency_seconds
        assert merged.gt_inferences == part.gt_inferences
        assert merged.slices == part.slices

    def test_merge_counters_skips_gauges(self, monkeypatch):
        monkeypatch.setitem(COUNTER_KINDS, "resident-streams", "gauge")
        merged = merge_counters(
            [
                {"queries-served": 2.0, "resident-streams": 5.0},
                {"queries-served": 1.0, "resident-streams": 7.0},
            ]
        )
        assert merged == {"queries-served": 3.0}  # no fleet-level gauge

    def test_router_scatter_latency_bounded_by_slowest_leg(
        self, fabric_tables, live_config
    ):
        """End-to-end pin of the counter semantics: a fleet round's
        latency equals its slowest shard leg, and its work counters are
        exactly the per-leg sums."""
        router = build_fabric(fabric_tables, live_config, "materialized")
        grouped = {}
        for name in FABRIC_STREAMS:
            grouped.setdefault(router.shard_of(name).shard_id, []).append(name)
        if len(grouped) < 2:
            pytest.skip("rendezvous put every stream on one shard")
        fleet = router.query_all("car")
        # after the cold round every leg is warm, so per-leg re-runs are
        # deterministic under caching and their counters must sum exactly
        repeat = router.query_all("car")
        repeat_legs = [
            router.query_all("car", streams=subset)
            for subset in grouped.values()
        ]
        assert repeat.cache_hits == sum(l.cache_hits for l in repeat_legs)
        assert repeat.gt_inferences == sum(l.gt_inferences for l in repeat_legs)
        assert repeat.latency_seconds <= fleet.latency_seconds
