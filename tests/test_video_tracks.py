"""Unit tests for track generation and the class distribution."""

import numpy as np
import pytest

from repro.video.profiles import get_profile
from repro.video.tracks import ClassDistribution, Track, TrackGenerator


@pytest.fixture(scope="module")
def gen():
    return TrackGenerator(get_profile("auburn_c"))


@pytest.fixture(scope="module")
def tracks(gen):
    return gen.generate(300.0)


def test_generation_deterministic(gen):
    a = gen.generate(100.0)
    b = TrackGenerator(get_profile("auburn_c")).generate(100.0)
    np.testing.assert_array_equal(a.class_id, b.class_id)
    np.testing.assert_array_equal(a.appearance_seed, b.appearance_seed)


def test_different_streams_differ():
    a = TrackGenerator(get_profile("auburn_c")).generate(100.0)
    b = TrackGenerator(get_profile("jacksonh")).generate(100.0)
    assert len(a) != len(b) or not np.array_equal(a.class_id, b.class_id)


def test_seed_salt_changes_tracks():
    a = TrackGenerator(get_profile("auburn_c"), seed_salt=0).generate(100.0)
    b = TrackGenerator(get_profile("auburn_c"), seed_salt=1).generate(100.0)
    assert len(a) != len(b) or not np.array_equal(a.start_s, b.start_s)


def test_track_count_near_expectation(tracks):
    profile = get_profile("auburn_c")
    # diurnal modulation averages ~ (1 + night)/2 over the window
    expected = profile.arrival_rate * 300.0 * (1 + profile.night_activity) / 2
    assert 0.5 * expected <= len(tracks) <= 1.6 * expected


def test_start_times_within_window(tracks):
    assert (tracks.start_s >= 0).all()
    assert (tracks.start_s < 300.0).all()


def test_durations_clipped(tracks):
    assert (tracks.duration_s >= TrackGenerator.MIN_DURATION_S).all()
    assert (tracks.duration_s <= TrackGenerator.MAX_DURATION_S).all()


def test_rotating_stream_short_tracks():
    tracks = TrackGenerator(get_profile("church_st")).generate(300.0)
    assert tracks.duration_s.max() <= 8.0


def test_difficulty_bounds(tracks):
    assert (tracks.difficulty >= 0.4).all()
    assert (tracks.difficulty <= 3.0).all()


def test_track_iteration(tracks):
    first = next(iter(tracks))
    assert isinstance(first, Track)
    assert first.end_s == pytest.approx(first.start_s + first.duration_s)


def test_invalid_duration(gen):
    with pytest.raises(ValueError):
        gen.generate(0.0)


def test_mismatched_array_lengths():
    from repro.video.tracks import TrackArrays

    with pytest.raises(ValueError):
        TrackArrays(
            np.zeros(3, dtype=np.int64),
            np.zeros(2, dtype=np.int64),
            np.zeros(3),
            np.zeros(3),
            np.zeros(3),
            np.zeros(3, dtype=np.int64),
        )


class TestClassDistribution:
    def test_probabilities_normalized(self):
        dist = ClassDistribution(get_profile("auburn_c"))
        assert dist.probabilities.sum() == pytest.approx(1.0)

    def test_head_classes_from_domain_pool(self):
        profile = get_profile("auburn_c")
        dist = ClassDistribution(profile)
        assert set(dist.head_classes) <= set(profile.head_pool())

    def test_no_duplicate_classes(self):
        dist = ClassDistribution(get_profile("msnbc"))
        assert len(np.unique(dist.classes)) == len(dist.classes)

    def test_present_count_matches_profile(self):
        profile = get_profile("cnn")
        dist = ClassDistribution(profile)
        assert dist.num_present == profile.num_present_classes

    def test_head_mass_dominates(self):
        """~93% of objects come from the head classes (Section 2.2.2)."""
        dist = ClassDistribution(get_profile("auburn_c"))
        n_head = len(dist.head_classes)
        head_mass = dist.probabilities[:n_head].sum()
        assert head_mass == pytest.approx(ClassDistribution.HEAD_MASS, abs=0.01)

    def test_dominant_classes_cover(self):
        dist = ClassDistribution(get_profile("auburn_c"))
        dom = dist.dominant_classes(0.95)
        idx = {int(c): i for i, c in enumerate(dist.classes)}
        covered = sum(dist.probabilities[idx[c]] for c in dom)
        assert covered >= 0.95

    def test_sampling_respects_support(self):
        dist = ClassDistribution(get_profile("lausanne"))
        rng = np.random.RandomState(0)
        draws = dist.sample(1000, rng)
        assert set(draws) <= set(int(c) for c in dist.classes)

    def test_shared_tail_between_streams(self):
        """Streams share much of their rare-class tail (Jaccard ~0.46)."""
        a = ClassDistribution(get_profile("auburn_c"))
        b = ClassDistribution(get_profile("lausanne"))
        sa, sb = set(int(c) for c in a.classes), set(int(c) for c in b.classes)
        jaccard = len(sa & sb) / len(sa | sb)
        assert jaccard > 0.2
