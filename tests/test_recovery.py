"""Crash-point sweep: recovery is bit-identical to uninterrupted ingest.

The acceptance drill for the durable stream fabric: a 3-stream live
workload is killed -- via injected storage faults -- around every
journal record and around every checkpoint commit, then recovered from
the surviving store and driven to completion.  At every crash point,
for both index modes, the recovered sessions' final state (cluster
assignments, suppression, watermark, counters, index contents, query
answers) must equal a run that never crashed -- which in turn equals a
one-shot ingest of the same windows.

The producer protocol under test mirrors a real deployment: chunks are
delivered at-least-once; after a crash the producer asks the recovered
session for its row watermark and resumes from the first undelivered
chunk.  A chunk whose journal append survived is never re-ingested
(the journal is the source of truth), and a crash before the very
first journal record simply re-opens the stream.
"""

import numpy as np
import pytest

from repro.cnn.zoo import resnet152
from repro.core.ingest import IngestPipeline
from repro.core.query import QueryEngine
from repro.core.streaming import StreamIngestor
from repro.core.system import FocusSystem
from repro.storage.docstore import DocumentStore
from repro.storage.faults import FaultInjected, FaultyStore
from repro.storage.journal import JOURNAL_PREFIX, IngestJournal

N_CHUNKS = 4
#: checkpoint every stream after this chunk round (plus a final round)
CHECKPOINT_ROUNDS = (1, 3)
QUERY_CLASSES = 2


def split_chunks(table, n=N_CHUNKS):
    """Frame-aligned row-range chunks: rows are frame-ordered, so only
    frame-aligned splits preserve stream time order."""
    frames = table.frame_idx
    size = len(table)
    bounds = [0]
    for i in range(1, n):
        stop = size * i // n
        while 0 < stop < size and frames[stop] == frames[stop - 1]:
            stop += 1
        if stop > bounds[-1]:
            bounds.append(stop)
    bounds.append(size)
    while len(bounds) < n + 1:  # degenerate tiny tables: pad empty tails
        bounds.append(size)
    return [table.slice(a, b) for a, b in zip(bounds, bounds[1:])]


def run_schedule(store, tables, config, index_mode):
    """Drive the 3-stream ingest schedule against ``store``.

    Round-robin chunk pushes with two multi-stream checkpoint rounds;
    raises whatever the store raises (the injected crash).
    """
    streams = sorted(tables)
    ingestors = {
        s: StreamIngestor(
            config,
            s,
            fps=tables[s].fps,
            index_mode=index_mode,
            journal=IngestJournal(store, s),
        )
        for s in streams
    }
    chunks = {s: split_chunks(tables[s]) for s in streams}
    for i in range(N_CHUNKS):
        for s in streams:
            ingestors[s].push(chunks[s][i])
        if i in CHECKPOINT_ROUNDS:
            for s in streams:
                ingestors[s].checkpoint(store)
    return ingestors


def recover_and_finish(store, tables, config, index_mode):
    """Resume every stream from ``store`` and deliver the rest of the
    workload (the at-least-once producer protocol)."""
    ingestors = {}
    for s in sorted(tables):
        chunks = split_chunks(tables[s])
        try:
            ing = StreamIngestor.recover(store, s)
        except KeyError:
            # crash before even the "open" record: nothing durable yet
            ing = StreamIngestor(
                config,
                s,
                fps=tables[s].fps,
                index_mode=index_mode,
                journal=IngestJournal(store, s),
            )
        assert ing.index_mode == index_mode
        bounds = np.cumsum([0] + [len(c) for c in chunks])
        k = int(np.searchsorted(bounds, ing.num_rows))
        # a journal append is atomic: recovered rows always sit exactly
        # on a chunk boundary, never inside a torn chunk
        assert bounds[k] == ing.num_rows
        for chunk in chunks[k:]:
            ing.push(chunk)
        # the post-recovery checkpoint must commit (fresh epoch CAS)
        assert ing.checkpoint(store) >= 1
        ingestors[s] = ing
    return ingestors


def state_fingerprint(ingestor):
    """Everything 'bit-identical' means, gathered for comparison."""
    gt = resnet152()
    index = ingestor.index
    entries = {
        cid: (
            index.cluster(cid),
            index.members(cid).tolist(),
            index.frames(cid).tolist(),
        )
        for cid in range(index.num_clusters)
    }
    engine = QueryEngine(index, ingestor.table, ingestor.config.model, gt)
    classes = [int(c) for c in ingestor.table.dominant_classes()[:QUERY_CLASSES]]
    answers = {}
    for cls in classes:
        result = engine.query(cls)
        answers[cls] = (
            result.returned_frames.tolist(),
            result.returned_rows.tolist(),
            result.gt_inferences,
        )
    return {
        "assignments": ingestor.clusters.assignments.tolist(),
        "seed_rows": ingestor.clusters.seed_rows.tolist(),
        "sizes": ingestor.clusters.sizes.tolist(),
        "suppressed": ingestor.result.suppressed.tolist(),
        "watermark": ingestor.watermark_s,
        "rows": ingestor.num_rows,
        "cnn_inferences": ingestor.cnn_inferences,
        "chunks_pushed": ingestor.chunks_pushed,
        "entries": entries,
        "answers": answers,
    }


@pytest.fixture(scope="module", params=["materialized", "lazy"])
def mode_workload(request, seeded_workload):
    """Per index mode: the workload plus the uninterrupted reference."""
    tables, config = seeded_workload
    index_mode = request.param
    clean_store = DocumentStore()
    clean = run_schedule(clean_store, tables, config, index_mode)
    reference = {s: state_fingerprint(ing) for s, ing in clean.items()}
    # profile the write trace once: the sweep pins crash points to it
    profile_inner = DocumentStore()
    profile = FaultyStore(profile_inner)
    run_schedule(profile, tables, config, index_mode)
    return index_mode, tables, config, reference, profile.write_log


def crash_points(write_log):
    """Write indices to kill at: around every journal record and every
    checkpoint commit, plus each checkpoint region's first write."""
    points = set()
    previous_was_checkpoint = False
    for idx, (op, target) in enumerate(write_log):
        if target.startswith(JOURNAL_PREFIX) and op == "insert_one":
            points.add(idx)      # the record never lands
            points.add(idx + 1)  # the record is the last durable write
            previous_was_checkpoint = False
        else:
            if not previous_was_checkpoint:
                points.add(idx)  # first write of a checkpoint region
            previous_was_checkpoint = True
        if op == "commit_staged":
            points.add(idx)      # crash instead of the atomic swap
            points.add(idx + 1)  # crash right after it
    return sorted(p for p in points if p <= len(write_log))


class TestCrashPointSweep:
    def test_live_equals_oneshot(self, mode_workload):
        """The uninterrupted live reference itself equals a one-shot
        ingest of each stream's full window (sanity anchor: the sweep
        below compares against a correct reference)."""
        index_mode, tables, config, reference, _ = mode_workload
        for s, table in tables.items():
            oneshot = IngestPipeline(config, index_mode=index_mode).run(table)
            assert reference[s]["assignments"] == oneshot.clusters.assignments.tolist()
            assert reference[s]["suppressed"] == oneshot.suppressed.tolist()
            assert reference[s]["cnn_inferences"] == oneshot.cnn_inferences

    def test_recovery_at_every_crash_point(self, mode_workload):
        """Acceptance: kill ingest at every crash point, recover, finish,
        and get a final state bit-identical to the uninterrupted run."""
        index_mode, tables, config, reference, write_log = mode_workload
        points = crash_points(write_log)
        assert len(points) >= 2 * N_CHUNKS * len(tables)
        crashed = 0
        for budget in points:
            inner = DocumentStore()
            faulty = FaultyStore(inner, fail_after_writes=budget)
            try:
                ingestors = run_schedule(faulty, tables, config, index_mode)
            except FaultInjected:
                crashed += 1
                ingestors = recover_and_finish(inner, tables, config, index_mode)
            for s in tables:
                assert state_fingerprint(ingestors[s]) == reference[s], (
                    "stream %r diverged after crash at write #%d" % (s, budget)
                )
        # the sweep must actually crash (a budget beyond the trace ends
        # the run cleanly; at most one point can be past the end)
        assert crashed >= len(points) - 1


class TestSystemRecovery:
    """FocusSystem-level recovery: handles, engines, fan-out queries."""

    def test_recover_resumes_live_queryable_sessions(self, seeded_workload):
        tables, config = seeded_workload
        streams = sorted(tables)
        chunks = {s: split_chunks(tables[s]) for s in streams}

        store = DocumentStore()
        crashed = FocusSystem()
        for s in streams:
            crashed.open_stream(
                s, fps=tables[s].fps, config=config, index_mode="lazy",
                wal_store=store,
            )
        for i in range(2):
            for s in streams:
                crashed.append(s, chunks[s][i])
        crashed.checkpoint(store)
        for s in streams:
            crashed.append(s, chunks[s][2])
        del crashed  # the process dies; only `store` survives

        recovered = FocusSystem()
        assert recovered.recover(store) == streams
        for s in streams:
            handle = recovered.handle(s)
            assert handle.live and not handle.restored
            recovered.append(s, chunks[s][3])

        uninterrupted = FocusSystem()
        for s in streams:
            uninterrupted.open_stream(
                s, fps=tables[s].fps, config=config, index_mode="lazy"
            )
            for chunk in chunks[s]:
                uninterrupted.append(s, chunk)

        for s in streams:
            np.testing.assert_array_equal(
                recovered.handle(s).table.time_s,
                uninterrupted.handle(s).table.time_s,
            )
        a = recovered.query_all("car")
        b = uninterrupted.query_all("car")
        for s in streams:
            np.testing.assert_array_equal(a.slices[s].frames, b.slices[s].frames)

    def test_recover_unknown_stream_rejected(self, seeded_workload):
        tables, config = seeded_workload
        store = DocumentStore()
        with pytest.raises(KeyError, match="no durable stream state"):
            FocusSystem().recover(store, streams=["auburn_c"])

    def test_sibling_checkpoint_isolation(self, seeded_workload):
        """A crash while checkpointing one stream leaves every sibling's
        committed snapshot untouched (per-stream epochs)."""
        tables, config = seeded_workload
        streams = sorted(tables)
        chunks = {s: split_chunks(tables[s]) for s in streams}

        inner = DocumentStore()
        system = FocusSystem()
        for s in streams:
            system.open_stream(
                s, fps=tables[s].fps, config=config, index_mode="materialized",
                wal_store=inner,
            )
        for i in range(2):
            for s in streams:
                system.append(s, chunks[s][i])
        system.checkpoint(inner)  # every stream commits epoch 1
        from repro.storage.journal import committed_checkpoint

        first_round = {s: committed_checkpoint(inner, s) for s in streams}
        for s in streams:
            system.append(s, chunks[s][2])

        # crash while the *second* stream of the round is checkpointing.
        # Profile an identical twin system through the exact same
        # schedule (ingest is deterministic, so its second-round write
        # trace matches), then kill a few writes into that round.
        twin_store = DocumentStore()
        twin = FocusSystem()
        for s in streams:
            twin.open_stream(
                s, fps=tables[s].fps, config=config, index_mode="materialized",
                wal_store=twin_store,
            )
        for i in range(2):
            for s in streams:
                twin.append(s, chunks[s][i])
        twin.checkpoint(twin_store)
        for s in streams:
            twin.append(s, chunks[s][2])
        profile = FaultyStore(twin_store)
        twin.checkpoint(profile)
        commits = [
            i for i, (op, _) in enumerate(profile.write_log) if op == "commit_staged"
        ]
        budget = commits[0] + 2  # mid-second-stream's staged writes
        assert budget < commits[1]

        faulty = FaultyStore(inner, fail_after_writes=budget)
        with pytest.raises(FaultInjected):
            system.checkpoint(faulty)

        done, pending = streams[0], streams[1:]
        assert committed_checkpoint(inner, done)["epoch"] == 2
        for s in pending:
            assert committed_checkpoint(inner, s) == first_round[s]

        # recovery: the first stream resumes at round 2, the others at
        # round 1 + journal replay; all end bit-identical
        recovered = FocusSystem()
        recovered.recover(store=inner)
        for s in streams:
            np.testing.assert_array_equal(
                recovered.handle(s).ingestor.clusters.assignments,
                system.handle(s).ingestor.clusters.assignments,
            )
