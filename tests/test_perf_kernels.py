"""Equivalence guarantees of the vectorized ingest hot path (PR 3).

The batch kernel speculates; the scalar loop is the semantic oracle.
These tests pin the contract that makes kernel choice a pure
performance knob: identical assignments, seed rows, sizes, and
counters, bit for bit, across kernels, chunkings, thresholds,
suppression masks, and eviction pressure.
"""

import numpy as np
import pytest

from repro.cnn.zoo import cheap_cnn, resnet152
from repro.core.clustering import (
    IncrementalClusterer,
    cluster_table,
    group_rows_by_cluster,
    grouped_min_max,
)
from repro.core.config import FocusConfig
from repro.core.ingest import IngestPipeline, simulate_pixel_diff
from repro.core.streaming import StreamIngestor
from repro.video.synthesis import generate_observations


@pytest.fixture(scope="module")
def stream_table():
    return generate_observations("auburn_c", 90.0, 30.0)


@pytest.fixture(scope="module")
def model():
    return cheap_cnn(1)


def _tracky_workload(rng, n, dim, n_tracks, jump_prob=0.15, sup_prob=0.3):
    """Interleaved multi-track features: tight runs with occasional jumps."""
    track_ids = rng.randint(0, n_tracks, size=n)
    anchors = rng.normal(size=(n_tracks, dim))
    anchors /= np.linalg.norm(anchors, axis=1, keepdims=True)
    feats = anchors[track_ids] + rng.normal(scale=0.08, size=(n, dim))
    jump = rng.uniform(size=n) < jump_prob
    feats[jump] += rng.normal(scale=1.0, size=(int(jump.sum()), dim))
    sup = rng.uniform(size=n) < sup_prob
    return feats, track_ids, sup


def _run(kernel, feats, track_ids, sup, threshold, max_live, bounds):
    clusterer = IncrementalClusterer(
        threshold=threshold, dim=feats.shape[1],
        max_live_clusters=max_live, kernel=kernel,
    )
    outs = [
        clusterer.add(feats[a:b], track_ids[a:b], suppressed=sup[a:b])
        for a, b in zip(bounds, bounds[1:])
    ]
    summary = clusterer.finalize()
    return (
        np.concatenate(outs), summary,
        clusterer.full_scans, clusterer.shortcut_hits,
    )


class TestKernelBitIdentity:
    @pytest.mark.parametrize("seed", range(8))
    def test_batch_matches_scalar_randomized(self, seed):
        """Assignments, seeds, sizes, and counters agree bit for bit on
        adversarial data: shared clusters, evictions, suppression."""
        rng = np.random.RandomState(1000 + seed)
        n = rng.randint(80, 500)
        dim = int(rng.choice([4, 8, 16]))
        threshold = float(rng.choice([0.05, 0.2, 0.5, 1.0]))
        max_live = int(rng.choice([2, 4, 16, 512]))
        sup_prob = float(rng.choice([0.0, 0.3, 0.7]))
        feats, track_ids, sup = _tracky_workload(
            rng, n, dim, rng.randint(2, 25), sup_prob=sup_prob
        )
        cuts = sorted(set(rng.choice(np.arange(1, n), size=3).tolist()))
        bounds = [0] + cuts + [n]
        ref = _run("scalar", feats, track_ids, sup, threshold, max_live, bounds)
        for kernel in ("batch", "auto"):
            got = _run(kernel, feats, track_ids, sup, threshold, max_live,
                       bounds)
            np.testing.assert_array_equal(got[0], ref[0])
            np.testing.assert_array_equal(got[1].seed_rows, ref[1].seed_rows)
            np.testing.assert_array_equal(got[1].sizes, ref[1].sizes)
            assert got[2] == ref[2] and got[3] == ref[3]

    @pytest.mark.parametrize("threshold", [0.1, 0.25, 0.5])
    def test_fast_path_matches_strict_on_dense_input(self, threshold):
        """Acceptance: on dense (non-suppressed) track-structured data,
        the fast path's assignments are bit-identical to strict=True."""
        rng = np.random.RandomState(7)
        n, dim, n_tracks = 600, 16, 12
        track_ids = np.repeat(np.arange(n_tracks), n // n_tracks)
        track_ids = track_ids.reshape(n_tracks, -1).T.ravel()  # interleaved
        anchors = rng.normal(size=(n_tracks, dim))
        anchors /= np.linalg.norm(anchors, axis=1, keepdims=True)
        feats = anchors[track_ids] + rng.normal(scale=0.01, size=(n, dim))
        for kernel in ("batch", "scalar", "auto"):
            fast = IncrementalClusterer(threshold=threshold, dim=dim,
                                        kernel=kernel)
            strict = IncrementalClusterer(threshold=threshold, dim=dim,
                                          strict=True)
            np.testing.assert_array_equal(
                fast.add(feats, track_ids), strict.add(feats, track_ids)
            )
            assert fast.shortcut_hits > 0

    def test_fast_path_matches_strict_with_suppression(self):
        """Suppressed rows rejoin their track's cluster in both modes.

        Data obeys the paper's Section 2.2.3 premise (consecutive
        observations of one track nearly identical, tracks well
        separated) -- the regime where the shortcut provably agrees
        with the full scan."""
        rng = np.random.RandomState(11)
        track_ids = rng.randint(0, 10, size=400)
        anchors = rng.normal(size=(10, 8))
        anchors /= np.linalg.norm(anchors, axis=1, keepdims=True)
        feats = anchors[track_ids] + rng.normal(scale=0.01, size=(400, 8))
        sup = rng.uniform(size=400) < 0.4
        for kernel in ("batch", "scalar"):
            fast = IncrementalClusterer(threshold=0.3, dim=8, kernel=kernel)
            strict = IncrementalClusterer(threshold=0.3, dim=8, strict=True)
            np.testing.assert_array_equal(
                fast.add(feats, track_ids, suppressed=sup),
                strict.add(feats, track_ids, suppressed=sup),
            )

    def test_chunking_invariance(self, stream_table, model):
        """cluster_table gives identical assignments for any chunking
        and any kernel (features are extracted dense-rows-only)."""
        sup = simulate_pixel_diff(stream_table)
        whole = cluster_table(stream_table, model, threshold=0.25,
                              suppressed=sup, chunk_rows=10 ** 9)
        for chunk_rows in (97, 1024):
            for kernel in ("batch", "scalar", "auto"):
                chunked = cluster_table(
                    stream_table, model, threshold=0.25, suppressed=sup,
                    chunk_rows=chunk_rows, kernel=kernel,
                )
                np.testing.assert_array_equal(
                    whole.assignments, chunked.assignments
                )


class TestRetiredClusterSemantics:
    def test_suppressed_row_follows_retired_cluster(self):
        """Pixel-diff matching is independent of the live set: a
        suppressed observation extends its track's cluster even after
        that cluster was retired (its id stays valid)."""
        clusterer = IncrementalClusterer(threshold=0.1, dim=4,
                                         max_live_clusters=2, kernel="scalar")
        eye = np.eye(4)
        # track 0 opens cluster 0; tracks 1..2 force it out of the live set
        clusterer.add(eye[:3], np.array([0, 1, 2]))
        assert 0 not in clusterer._slot_of_id  # cluster 0 retired
        sup = np.array([True])
        ids = clusterer.add(eye[:1] * np.nan, np.array([0]), suppressed=sup)
        assert ids.tolist() == [0]
        summary = clusterer.finalize()
        assert summary.sizes[0] == 2

    def test_dense_row_cannot_rejoin_retired_cluster(self):
        """A dense row of the same track must re-scan: the retired
        cluster is out of the live set (matches pre-PR behaviour)."""
        clusterer = IncrementalClusterer(threshold=0.1, dim=4,
                                         max_live_clusters=2, kernel="scalar")
        eye = np.eye(4)
        clusterer.add(eye[:3], np.array([0, 1, 2]))
        ids = clusterer.add(eye[:1], np.array([0]))
        assert int(ids[0]) == clusterer.num_clusters - 1  # fresh cluster


class TestGrouping:
    def test_group_rows_by_cluster_empty_groups_not_aliased(self):
        """Regression: empty groups used to share one list-multiplied
        array object; each group must be its own array."""
        assignments = np.array([0, 3, 0, 3], dtype=np.int64)
        groups = group_rows_by_cluster(assignments, 5)
        assert [len(g) for g in groups] == [2, 0, 0, 2, 0]
        empties = [groups[1], groups[2], groups[4]]
        assert len({id(g) for g in empties}) == 3
        np.testing.assert_array_equal(groups[0], [0, 2])
        np.testing.assert_array_equal(groups[3], [1, 3])

    def test_grouped_min_max(self):
        assignments = np.array([1, 0, 1, 1], dtype=np.int64)
        values = np.array([5.0, 2.0, 7.0, 1.0])
        first, last = grouped_min_max(assignments, 3, values)
        np.testing.assert_allclose(first, [2.0, 1.0, 0.0])
        np.testing.assert_allclose(last, [2.0, 7.0, 0.0])


class TestFeatureRowsNeeded:
    def test_only_unknown_first_suppressed_rows_need_features(self):
        clusterer = IncrementalClusterer(threshold=0.3, dim=4)
        tracks = np.array([7, 7, 8, 8])
        sup = np.array([True, True, False, True])
        need = clusterer.feature_rows_needed(tracks, sup)
        # row 0: suppressed but first sight of track 7 -> needed
        # row 1: suppressed, track known by then -> skipped
        # row 3: suppressed, track 8 established by row 2 -> skipped
        assert need.tolist() == [True, False, True, False]
        # after ingesting track 7, its suppressed rows never need features
        clusterer.add(np.eye(4)[:1], np.array([7]))
        need = clusterer.feature_rows_needed(np.array([7]), np.array([True]))
        assert need.tolist() == [False]


class TestBatchedTopK:
    def test_topk_lists_match_topk_list(self, model, stream_table):
        rng = np.random.RandomState(3)
        seeds = rng.randint(0, 2 ** 63, size=64).astype(np.uint64)
        classes = rng.choice(np.unique(stream_table.class_id), size=64)
        diffs = rng.uniform(0.5, 2.0, size=64)
        batch = model.topk_lists(seeds, classes, diffs, 8)
        singles = [
            model.topk_list(int(s), int(c), float(d), 8)
            for s, c, d in zip(seeds, classes, diffs)
        ]
        assert batch == singles

    def test_specialized_topk_lists_match(self, stream_table):
        from repro.cnn.specialize import specialize

        spec = specialize(cheap_cnn(1), stream_table.class_histogram(), 5,
                          "auburn_c")
        rng = np.random.RandomState(4)
        seeds = rng.randint(0, 2 ** 63, size=48).astype(np.uint64)
        classes = rng.choice(np.unique(stream_table.class_id), size=48)
        diffs = rng.uniform(0.5, 2.0, size=48)
        batch = spec.topk_lists(seeds, classes, diffs, 6)
        singles = [
            spec.topk_list(int(s), int(c), float(d), 6)
            for s, c, d in zip(seeds, classes, diffs)
        ]
        assert batch == singles


class TestBlockedExtraction:
    def test_block_size_cannot_change_features(self, stream_table, model):
        from repro.cnn.features import FeatureExtractor

        small = FeatureExtractor(model.salt,
                                 noise_multiplier=model.feature_noise)
        small.BLOCK_ROWS = 57
        unblocked = FeatureExtractor(model.salt,
                                     noise_multiplier=model.feature_noise)
        unblocked.BLOCK_ROWS = 10 ** 9
        sample = stream_table.slice(0, 700)
        np.testing.assert_array_equal(
            small.extract(sample), unblocked.extract(sample)
        )
        # warm per-track caches are equally invisible
        np.testing.assert_array_equal(
            small.extract(sample), unblocked.extract(sample)
        )

    def test_slice_matches_select(self, stream_table):
        mask = np.zeros(len(stream_table), dtype=bool)
        mask[100:300] = True
        sliced = stream_table.slice(100, 300)
        selected = stream_table.select(mask)
        for col in ("track_id", "class_id", "time_s", "frame_idx",
                    "difficulty", "appearance_seed", "obs_in_track"):
            np.testing.assert_array_equal(getattr(sliced, col),
                                          getattr(selected, col))


class TestLiveEquivalence:
    @pytest.mark.parametrize("index_mode", ["lazy", "materialized"])
    def test_live_chunked_matches_one_shot_at_every_watermark(
        self, stream_table, model, index_mode
    ):
        """The new extraction/cluster fast paths keep the PR-2 invariant:
        every watermark's answers equal a one-shot ingest of the prefix."""
        config = FocusConfig(model=model, k=4, cluster_threshold=0.3)
        gt = resnet152()
        n = len(stream_table)
        bounds = [0] + [n * i // 5 for i in range(1, 5)] + [n]
        ingestor = StreamIngestor(config, stream_table.stream,
                                  fps=stream_table.fps, index_mode=index_mode)
        classes = [int(c) for c in stream_table.dominant_classes()[:2]]
        for a, b in zip(bounds, bounds[1:]):
            ingestor.push(stream_table.slice(a, b))
            prefix = stream_table.slice(0, b)
            oneshot = IngestPipeline(config, index_mode=index_mode).run(prefix)
            np.testing.assert_array_equal(
                ingestor.clusters.assignments, oneshot.clusters.assignments
            )
            from repro.core.query import QueryEngine

            live_engine = QueryEngine(ingestor.index, ingestor.table,
                                      model, gt)
            ref_engine = QueryEngine(oneshot.index, oneshot.table, model, gt)
            for cid in classes:
                live = live_engine.query(cid)
                ref = ref_engine.query(cid)
                np.testing.assert_array_equal(live.returned_frames,
                                              ref.returned_frames)
                assert live.gt_inferences == ref.gt_inferences
