"""Unit tests for segment-level precision/recall (Section 6.1)."""

import numpy as np
import pytest

from repro.core.metrics import (
    SegmentMetrics,
    StreamAccuracy,
    gt_segments,
    result_segments,
    segment_metrics,
)
from repro.video.synthesis import generate_observations


@pytest.fixture(scope="module")
def table():
    return generate_observations("auburn_c", 60.0, 30.0)


def test_perfect_query_scores_one(table):
    cls = int(table.dominant_classes()[0])
    rows = np.nonzero(table.class_id == cls)[0]
    m = segment_metrics(table, cls, rows)
    assert m.precision == 1.0
    assert m.recall == 1.0
    assert m.f1 == 1.0


def test_empty_result_full_precision_zero_recall(table):
    cls = int(table.dominant_classes()[0])
    m = segment_metrics(table, cls, np.zeros(0, dtype=np.int64))
    assert m.precision == 1.0  # nothing wrong returned
    assert m.recall == 0.0 or m.true_segments == 0


def test_half_results_halve_recall(table):
    cls = int(table.dominant_classes()[0])
    truth = sorted(gt_segments(table, cls))
    if len(truth) < 4:
        pytest.skip("not enough segments")
    keep = set(truth[: len(truth) // 2])
    rows = np.nonzero(
        (table.class_id == cls)
        & np.isin(np.floor(table.time_s).astype(int), list(keep))
    )[0]
    m = segment_metrics(table, cls, rows)
    assert m.precision == 1.0
    assert m.recall == pytest.approx(len(keep) / len(truth), abs=0.1)


def test_wrong_class_rows_cost_precision(table):
    cls = int(table.dominant_classes()[0])
    other = int(table.dominant_classes()[1])
    rows = np.nonzero(table.class_id == other)[0]
    m = segment_metrics(table, cls, rows)
    # returning another class's segments is (mostly) wrong
    assert m.precision < 0.9


def test_fifty_percent_rule(table):
    """A class present in under half a second's frames is not a GT
    segment (the paper's flicker-smoothing rule)."""
    cls = int(table.dominant_classes()[0])
    truth = gt_segments(table, cls)
    seconds = np.floor(table.time_s).astype(int)
    for sec in list(truth)[:10]:
        in_sec = (seconds == sec) & (table.class_id == cls)
        frames = len(np.unique(table.frame_idx[in_sec]))
        assert frames >= 0.5 * table.fps


def test_result_segments_same_rule(table):
    cls = int(table.dominant_classes()[0])
    rows = np.nonzero(table.class_id == cls)[0]
    assert result_segments(table, rows) == gt_segments(table, cls)


def test_segment_metrics_dataclass():
    m = SegmentMetrics(class_id=1, true_segments=10, returned_segments=8, correct_segments=6)
    assert m.precision == pytest.approx(0.75)
    assert m.recall == pytest.approx(0.6)
    assert 0 < m.f1 < 1


def test_stream_accuracy_weighting():
    acc = StreamAccuracy(
        per_class={
            1: SegmentMetrics(1, true_segments=100, returned_segments=100, correct_segments=100),
            2: SegmentMetrics(2, true_segments=1, returned_segments=1, correct_segments=0),
        }
    )
    # the big class dominates the weighted average
    assert acc.recall > 0.9
    assert acc.min_recall == 0.0


def test_stream_accuracy_empty():
    acc = StreamAccuracy(per_class={})
    assert acc.precision == 1.0
    assert acc.recall == 1.0
    assert acc.min_precision == 1.0
