"""Unit tests for pixel-frame rendering."""

import numpy as np
import pytest

from repro.video.frames import FrameRenderer, GroundTruthBox
from repro.video.profiles import get_profile
from repro.video.tracks import TrackGenerator


def _dense_tracks(n=4, duration=6.0, seed=123):
    """Hand-built tracks that are guaranteed on-screen."""
    import numpy as np
    from repro.video.tracks import TrackArrays

    rng = np.random.RandomState(seed)
    return TrackArrays(
        track_id=np.arange(n, dtype=np.int64),
        class_id=rng.randint(0, 30, size=n).astype(np.int64),
        start_s=np.linspace(0.0, duration * 0.3, n),
        duration_s=np.full(n, duration * 0.7),
        difficulty=np.ones(n),
        appearance_seed=rng.randint(0, 2 ** 31, size=n).astype(np.int64),
    )


@pytest.fixture(scope="module")
def clip():
    return FrameRenderer(height=96, width=160).render(_dense_tracks(), 8.0, fps=5.0)


def test_clip_shape(clip):
    assert clip.num_frames == 40
    assert clip.shape == (96, 160)
    assert clip.frames.dtype == np.uint8


def test_boxes_per_frame(clip):
    assert len(clip.boxes) == clip.num_frames
    for frame_boxes in clip.boxes:
        for box in frame_boxes:
            assert 0 <= box.x < 160 and 0 <= box.y < 96
            assert box.w > 0 and box.h > 0


def test_objects_brighter_than_background(clip):
    """Rendered objects are bright rectangles on the textured background."""
    lit = 0
    for f, frame_boxes in enumerate(clip.boxes):
        for box in frame_boxes:
            region = clip.frames[f, box.y : box.y + box.h, box.x : box.x + box.w]
            if region.mean() > 140:
                lit += 1
    total = sum(len(b) for b in clip.boxes)
    assert total > 0
    assert lit >= 0.9 * total


def test_render_deterministic():
    tracks = _dense_tracks(n=3, duration=4.0)
    a = FrameRenderer().render(tracks, 4.0, fps=5.0)
    b = FrameRenderer().render(tracks, 4.0, fps=5.0)
    np.testing.assert_array_equal(a.frames, b.frames)


def test_too_small_frame_rejected():
    with pytest.raises(ValueError):
        FrameRenderer(height=8, width=8)


def test_ground_truth_box_intersects():
    a = GroundTruthBox(0, 0, x=0, y=0, w=10, h=10)
    b = GroundTruthBox(1, 0, x=5, y=5, w=10, h=10)
    c = GroundTruthBox(2, 0, x=20, y=20, w=5, h=5)
    assert a.intersects(b)
    assert not a.intersects(c)
