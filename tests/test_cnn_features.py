"""Unit tests for feature-vector synthesis (Section 2.2.3 properties)."""

import numpy as np
import pytest

from repro.cnn.features import FeatureExtractor
from repro.cnn.zoo import cheap_cnn, resnet18


@pytest.fixture(scope="module")
def extractor():
    return resnet18().feature_extractor()


@pytest.fixture(scope="module")
def feats(extractor, small_table):
    return extractor.extract(small_table)


def test_shape_and_dtype(feats, small_table, extractor):
    assert feats.shape == (len(small_table), extractor.dim)
    assert feats.dtype == np.float32


def test_unit_norm(feats):
    norms = np.linalg.norm(feats, axis=1)
    np.testing.assert_allclose(norms, 1.0, atol=1e-5)


def test_deterministic(extractor, small_table):
    again = extractor.extract(small_table)
    np.testing.assert_array_equal(
        extractor.extract(small_table), again
    )


def test_empty_table(extractor, small_table):
    empty = small_table.select(np.zeros(len(small_table), dtype=bool))
    assert extractor.extract(empty).shape == (0, extractor.dim)


def test_consecutive_observations_close(extractor, small_table):
    """Same object across adjacent frames: nearly identical features."""
    feats = extractor.extract(small_table)
    tid = small_table.track_id
    order = np.lexsort((small_table.time_s, tid))
    same_track = tid[order][1:] == tid[order][:-1]
    d = np.linalg.norm(feats[order][1:] - feats[order][:-1], axis=1)
    consecutive = d[same_track]
    # hard one-off observations are far from everything; the bulk of
    # consecutive pairs are within noise+drift distance
    assert np.median(consecutive) < 0.1


def test_same_class_closer_than_unrelated_class(extractor, small_table):
    """Class prototypes separate unrelated classes far more than
    instances of the same class."""
    feats = extractor.extract(small_table)
    classes = small_table.class_id
    unique = np.unique(classes)
    if len(unique) < 2:
        pytest.skip("sample has one class")
    a, b = unique[0], unique[-1]
    mean_a = feats[classes == a].mean(axis=0)
    mean_b = feats[classes == b].mean(axis=0)
    within = np.linalg.norm(feats[classes == a] - mean_a, axis=1).mean()
    between = np.linalg.norm(mean_a - mean_b)
    assert between > within * 0.5


def test_nearest_neighbour_same_class(extractor, tiny_table):
    """Section 2.2.3: NN by cheap-CNN features shares the class (>97%)."""
    feats = extractor.extract(tiny_table).astype(np.float64)
    d2 = (
        (feats ** 2).sum(1)[:, None]
        + (feats ** 2).sum(1)[None, :]
        - 2 * feats @ feats.T
    )
    np.fill_diagonal(d2, np.inf)
    nn = d2.argmin(axis=1)
    same = (tiny_table.class_id[nn] == tiny_table.class_id).mean()
    assert same > 0.97


def test_class_prototype_unit_and_cached(extractor):
    p1 = extractor.class_prototype(3)
    p2 = extractor.class_prototype(3)
    assert np.linalg.norm(p1) == pytest.approx(1.0, abs=1e-9)
    np.testing.assert_array_equal(p1, p2)


def test_confusable_prototypes_closer(extractor):
    from repro.video.classes import class_id

    car = extractor.class_prototype(class_id("car"))
    taxi = extractor.class_prototype(class_id("taxi"))
    suit = extractor.class_prototype(class_id("suit"))
    assert np.linalg.norm(car - taxi) < np.linalg.norm(car - suit)


def test_noise_multiplier_spreads_features(small_table):
    sharp = FeatureExtractor(model_salt=1, noise_multiplier=0.1)
    blurry = FeatureExtractor(model_salt=1, noise_multiplier=3.0)
    fs = sharp.extract(small_table)
    fb = blurry.extract(small_table)
    # same track consecutive distance grows with noise
    tid = small_table.track_id
    mask = tid[1:] == tid[:-1]
    ds = np.linalg.norm(fs[1:] - fs[:-1], axis=1)[mask]
    db = np.linalg.norm(fb[1:] - fb[:-1], axis=1)[mask]
    assert np.median(db) > np.median(ds)


def test_negative_noise_rejected():
    with pytest.raises(ValueError):
        FeatureExtractor(model_salt=1, noise_multiplier=-1)


def test_extract_chunked_matches_full(extractor, tiny_table):
    full = extractor.extract(tiny_table)
    parts = [f for _, _, f in extractor.extract_chunked(tiny_table, chunk_rows=100)]
    np.testing.assert_allclose(np.vstack(parts), full, atol=1e-6)
