"""Unit tests for the ClassifierModel abstraction."""

import numpy as np
import pytest

from repro.cnn.costs import ArchSpec
from repro.cnn.model import ClassifierModel


@pytest.fixture(scope="module")
def model():
    arch = ArchSpec(family="resnet", conv_layers=18, gflops_override=1.6)
    return ClassifierModel(name="test-model", arch=arch, dispersion=24.0)


def test_ground_truth_flag(gt_model, cheap_model):
    assert gt_model.is_ground_truth
    assert not cheap_model.is_ground_truth


def test_gt_always_rank_one(gt_model, small_table):
    assert (gt_model.ranks(small_table) == 1).all()


def test_gt_top1_is_truth(gt_model, small_table):
    np.testing.assert_array_equal(
        gt_model.predicted_top1(small_table), small_table.class_id
    )


def test_cheap_top1_sometimes_wrong(model, small_table):
    import numpy as np

    mask = np.zeros(len(small_table), dtype=bool)
    mask[:200] = True
    sub = small_table.select(mask)
    predicted = model.predicted_top1(sub)
    truth = sub.class_id
    assert (predicted != truth).any()
    # wrong answers are still valid class ids
    assert (predicted >= 0).all() and (predicted < 1000).all()


def test_cost_seconds(model):
    one = model.cost_seconds(1)
    assert model.cost_seconds(100) == pytest.approx(100 * one)
    with pytest.raises(ValueError):
        model.cost_seconds(-1)


def test_cheaper_than(gt_model, cheap_model):
    assert cheap_model.cheaper_than(gt_model) == pytest.approx(7.0, rel=0.01)


def test_topk_membership_includes_true_class_at_high_k(model, small_table):
    sub = small_table.time_range(0, 10)
    cls = int(sub.class_id[0])
    member = model.topk_membership(sub, cls, 900)
    of_class = sub.class_id == cls
    assert member[of_class].mean() > 0.95


def test_topk_membership_monotone_in_k(model, small_table):
    sub = small_table.time_range(0, 10)
    cls = int(sub.class_id[0])
    m_small = model.topk_membership(sub, cls, 5)
    m_large = model.topk_membership(sub, cls, 100)
    # k=5 members are a subset of k=100 members on the true-class path;
    # overall count must grow
    assert m_large.sum() >= m_small.sum()


def test_topk_membership_invalid_k(model, small_table):
    with pytest.raises(ValueError):
        model.topk_membership(small_table, 0, 0)


def test_topk_list_contains_true_class_at_its_rank(model):
    found_rank_gt1 = False
    for seed in range(200):
        result = model.classify_one(seed, true_class=8, difficulty=1.0, k=50)
        if result.true_rank <= 50:
            assert result.ranked_classes[result.true_rank - 1] == 8
            if result.true_rank > 1:
                found_rank_gt1 = True
        else:
            assert 8 not in result.ranked_classes
    assert found_rank_gt1


def test_topk_list_distinct(model):
    ranked = model.topk_list(12345, true_class=8, difficulty=1.0, k=100)
    assert len(ranked) == len(set(ranked))


def test_topk_list_invalid_k(model):
    with pytest.raises(ValueError):
        model.topk_list(1, 1, 1.0, 0)


def test_classification_result_api(model):
    result = model.classify_one(7, true_class=8, difficulty=1.0, k=10)
    assert result.top1 == result.ranked_classes[0]
    assert result.contains(result.ranked_classes[-1])
    assert not result.contains(result.ranked_classes[-1], k=1) or len(result.ranked_classes) == 1


def test_expected_recall_and_k_inverse(model):
    k = model.k_for_recall(0.9)
    assert model.expected_recall_at_k(k) >= 0.9
    assert model.expected_recall_at_k(k - 5) < 0.9 or k <= 5


def test_k_for_recall_validation(model, gt_model):
    assert gt_model.k_for_recall(0.99) == 1
    with pytest.raises(ValueError):
        model.k_for_recall(1.5)


def test_dispersion_validation():
    arch = ArchSpec(family="resnet", conv_layers=18)
    with pytest.raises(ValueError):
        ClassifierModel(name="x", arch=arch, dispersion=-1)


def test_features_dim(model, tiny_table):
    feats = model.features(tiny_table)
    assert feats.shape == (len(tiny_table), model.feature_dim)


def test_repr(model):
    assert "test-model" in repr(model)
