"""Unit tests for the observability package (repro.obs).

The package is the substrate every layer records into, so its own
contracts are pinned tightly here: histogram quantiles stay within the
log-bucket error bound and merge losslessly, the kind registry is live
and conflict-checked, the event ring is bounded, and trace sampling is
deterministic with the first eligible request always sampled (the CI
smoke guarantee).  Integration across the serve/fabric layers lives in
``test_obs_keys.py``.
"""

import json
import math

import numpy as np
import pytest

from repro.obs.events import EventLog
from repro.obs.metrics import (
    GROWTH,
    LatencyHistogram,
    MetricsRegistry,
    kind_registry,
    register_keys,
)
from repro.obs.trace import (
    SpanSink,
    Tracer,
    chrome_trace_events,
    dump_spans,
    export_chrome_trace,
    finish_span,
    load_spans,
    span,
    start_span,
)

#: log-bucket quantile error: one bucket of relative width, plus slack
#: for the interpolation inside the bucket
QUANTILE_RTOL = GROWTH - 1.0 + 0.02


# ---------------------------------------------------------------------------
# histograms
# ---------------------------------------------------------------------------

class TestLatencyHistogram:
    def test_quantiles_within_bucket_error(self):
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-5.0, sigma=1.5, size=20_000)
        hist = LatencyHistogram()
        for s in samples:
            hist.observe(float(s))
        for q in (50.0, 95.0, 99.0):
            exact = float(np.percentile(samples, q))
            approx = hist.percentile(q)
            assert approx == pytest.approx(exact, rel=QUANTILE_RTOL)

    def test_summary_tracks_exact_extremes_and_mean(self):
        hist = LatencyHistogram()
        values = [0.001, 0.002, 0.004, 0.008, 0.5]
        for v in values:
            hist.observe(v)
        s = hist.summary()
        assert s["count"] == len(values)
        assert s["min_s"] == pytest.approx(min(values))
        assert s["max_s"] == pytest.approx(max(values))
        assert s["mean_s"] == pytest.approx(sum(values) / len(values))
        assert hist.mean == pytest.approx(sum(values) / len(values))
        # percentiles are clamped to the observed range
        assert s["min_s"] <= s["p50_s"] <= s["p95_s"] <= s["p99_s"] <= s["max_s"]

    def test_merge_equals_combined(self):
        rng = np.random.default_rng(11)
        a_vals = rng.lognormal(-4.0, 1.0, 5000)
        b_vals = rng.lognormal(-6.0, 1.0, 5000)
        a, b, combined = (
            LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        )
        for v in a_vals:
            a.observe(float(v))
            combined.observe(float(v))
        for v in b_vals:
            b.observe(float(v))
            combined.observe(float(v))
        a.merge(b)
        assert a.count == combined.count
        assert a.sum == pytest.approx(combined.sum)
        assert a.min == combined.min and a.max == combined.max
        for q in (50.0, 95.0, 99.0):
            assert a.percentile(q) == pytest.approx(combined.percentile(q))

    def test_dict_round_trip_is_lossless(self):
        hist = LatencyHistogram()
        for v in (1e-7, 1e-3, 0.05, 2.0, 500.0):  # under- and overflow too
            hist.observe(v)
        clone = LatencyHistogram.from_dict(hist.to_dict())
        assert clone.count == hist.count
        assert clone.sum == pytest.approx(hist.sum)
        assert clone.min == hist.min and clone.max == hist.max
        for q in (50.0, 95.0, 99.0):
            assert clone.percentile(q) == hist.percentile(q)
        # the wire encoding is sparse and JSON-safe
        json.dumps(hist.to_dict())

    def test_garbage_observations_ignored(self):
        hist = LatencyHistogram()
        hist.observe(-1.0)
        hist.observe(float("nan"))
        assert hist.count == 0
        assert hist.summary()["count"] == 0
        # an empty histogram reports NaN, never a divide-by-zero
        assert math.isnan(hist.percentile(99.0))
        assert math.isnan(hist.mean)

    def test_extreme_values_clamp_to_edge_buckets(self):
        hist = LatencyHistogram()
        hist.observe(0.0)     # below the 1us floor: underflow bucket
        hist.observe(1e9)     # above the 100s ceiling: last bucket
        assert hist.count == 2
        assert hist.min == 0.0 and hist.max == 1e9


# ---------------------------------------------------------------------------
# registry + kinds
# ---------------------------------------------------------------------------

class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.counter("ops", 2)
        reg.counter("ops", 3)
        reg.gauge("depth", 7)
        reg.observe("lat_s", 0.01)
        snap = reg.snapshot()
        assert snap["counters"] == {"ops": 5}
        assert snap["gauges"] == {"depth": 7}
        assert set(snap["histograms"]) == {"lat_s"}

    def test_merge_snapshots_sums_and_merges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("ops", 2)
        b.counter("ops", 3)
        a.gauge("depth", 1)
        b.gauge("depth", 4)
        a.observe("lat_s", 0.01)
        b.observe("lat_s", 0.04)
        total = MetricsRegistry.merge_snapshots(
            [a.snapshot(), b.snapshot()]
        )
        assert total["counters"]["ops"] == 5
        assert total["gauges"]["depth"] == 5
        merged = LatencyHistogram.from_dict(total["histograms"]["lat_s"])
        assert merged.count == 2
        assert merged.min == pytest.approx(0.01)
        assert merged.max == pytest.approx(0.04)
        summaries = MetricsRegistry.summarize(total)
        assert summaries["lat_s"]["count"] == 2

    def test_kind_registry_is_live_and_conflict_checked(self):
        ns = "test-obs-%d" % id(self)
        kinds = kind_registry(ns)
        keys = register_keys(ns, "sum", "a", "b")
        assert keys == ("a", "b")
        assert kinds == {"a": "sum", "b": "sum"}
        assert kind_registry(ns) is kinds  # same mutable dict every call
        register_keys(ns, "sum", "a")  # idempotent re-registration
        with pytest.raises(ValueError):
            register_keys(ns, "gauge", "a")  # kind conflict


# ---------------------------------------------------------------------------
# events
# ---------------------------------------------------------------------------

class TestEventLog:
    def test_ring_is_bounded_and_ordered(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("tick", shard="s0", i=i)
        events = log.events()
        assert len(log) == 4
        assert [e["i"] for e in events] == [6, 7, 8, 9]
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        monos = [e["t_mono_s"] for e in events]
        assert monos == sorted(monos)

    def test_event_schema(self):
        log = EventLog()
        log.emit(
            "worker.restart", shard="shard-1", corr_id=42,
            trace_id="abc", restarts=2,
        )
        (event,) = log.events()
        assert event["kind"] == "worker.restart"
        assert event["shard"] == "shard-1"
        assert event["corr_id"] == 42
        assert event["trace_id"] == "abc"
        assert event["restarts"] == 2
        assert "t_wall_s" in event and "t_mono_s" in event

    def test_kind_filter(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        log.emit("a")
        assert len(log.events("a")) == 2
        assert len(log.events("b")) == 1

    def test_jsonl_sink(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(jsonl_path=str(path))
        log.emit("breaker.trip", shard="shard-0", failures=3)
        log.emit("breaker.rearm", shard="shard-0")
        log.close()
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines() if line
        ]
        assert [e["kind"] for e in lines] == ["breaker.trip", "breaker.rearm"]
        assert lines[0]["failures"] == 3


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------

class TestTracer:
    def test_rate_zero_never_samples(self):
        tracer = Tracer(0.0)
        assert not tracer.enabled
        assert all(tracer.sample() is None for _ in range(100))

    def test_rate_one_always_samples(self):
        tracer = Tracer(1.0)
        contexts = [tracer.sample() for _ in range(10)]
        assert all(c is not None for c in contexts)
        assert len({c["trace_id"] for c in contexts}) == 10

    def test_sampling_is_deterministic_and_first_wins(self):
        tracer = Tracer(0.25)
        picks = [tracer.sample() is not None for _ in range(12)]
        # the first eligible request is always sampled (smoke guarantee),
        # then every round(1/rate)-th after it
        assert picks == [True, False, False, False] * 3

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(-0.1)
        with pytest.raises(ValueError):
            Tracer(1.5)


class TestSpans:
    def test_none_context_is_a_noop(self):
        sink = SpanSink()
        with span("x", None, sink=sink) as child:
            assert child is None
        handle, child = start_span("y", None)
        assert handle is None and child is None
        finish_span(handle, sink=sink)
        assert len(sink) == 0

    def test_nesting_links_parents(self):
        sink = SpanSink()
        root = {"trace_id": "t1", "parent_id": None}
        with span("outer", root, sink=sink) as child_ctx:
            assert child_ctx["trace_id"] == "t1"
            with span("inner", child_ctx, sink=sink):
                pass
        inner, outer = sink.drain()
        assert (inner["name"], outer["name"]) == ("inner", "outer")
        assert outer["parent_id"] is None
        assert inner["parent_id"] == outer["span_id"]
        assert inner["trace_id"] == outer["trace_id"] == "t1"
        assert outer["dur_s"] >= inner["dur_s"] >= 0.0

    def test_start_finish_pair(self):
        sink = SpanSink()
        root = {"trace_id": "t2", "parent_id": None}
        handle, child_ctx = start_span("leg", root, shard="s0")
        assert child_ctx["parent_id"] == handle["span_id"]
        finish_span(handle, sink=sink)
        (s,) = sink.drain()
        assert s["name"] == "leg"
        assert s["args"] == {"shard": "s0"}
        assert s["dur_s"] >= 0.0 and "_mono_0" not in s

    def test_sink_is_bounded(self):
        sink = SpanSink(capacity=8)
        root = {"trace_id": "t3", "parent_id": None}
        for i in range(20):
            with span("s%d" % i, root, sink=sink):
                pass
        assert len(sink) == 8
        assert sink.spans()[-1]["name"] == "s19"

    def test_absorb_copies_foreign_spans(self):
        sink = SpanSink()
        shipped = [{"name": "remote", "trace_id": "t", "span_id": "a",
                    "parent_id": None, "ts_wall_s": 1.0, "dur_s": 0.5,
                    "pid": 99, "args": {}}]
        sink.absorb(shipped)
        (got,) = sink.drain()
        assert got == shipped[0]
        assert got is not shipped[0]


class TestExport:
    def _spans(self):
        sink = SpanSink()
        root = {"trace_id": "t9", "parent_id": None}
        with span("router:scatter", root, sink=sink, shard="s0"):
            pass
        return sink.drain()

    def test_chrome_events_shape(self):
        (event,) = chrome_trace_events(self._spans())
        assert event["ph"] == "X"
        assert event["name"] == "router:scatter"
        assert event["cat"] == "router"
        assert event["dur"] > 0.0
        assert event["args"]["trace_id"] == "t9"
        assert event["args"]["shard"] == "s0"

    def test_export_and_jsonl_round_trip(self, tmp_path):
        spans = self._spans()
        trace_path = tmp_path / "trace.json"
        n = export_chrome_trace(spans, str(trace_path))
        assert n == 1
        doc = json.loads(trace_path.read_text())
        assert len(doc["traceEvents"]) == 1
        jsonl_path = tmp_path / "spans.jsonl"
        assert dump_spans(spans, str(jsonl_path)) == 1
        assert load_spans(str(jsonl_path)) == spans
