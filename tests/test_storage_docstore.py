"""Unit tests for the embedded document store."""

import os

import pytest

from repro.storage.docstore import Collection, DocStoreError, DocumentStore


@pytest.fixture
def coll():
    c = Collection("test")
    c.insert_many(
        [
            {"kind": "cluster", "size": 5, "classes": [1, 2]},
            {"kind": "cluster", "size": 9, "classes": [2, 3]},
            {"kind": "meta", "size": 1, "classes": []},
        ]
    )
    return c


def test_insert_assigns_ids(coll):
    doc_id = coll.insert_one({"kind": "x"})
    assert coll.get(doc_id)["kind"] == "x"
    assert len(coll) == 4


def test_insert_rejects_non_dict():
    with pytest.raises(DocStoreError):
        Collection("c").insert_one([1, 2])


def test_find_equality(coll):
    assert len(coll.find({"kind": "cluster"})) == 2


def test_find_operators(coll):
    assert len(coll.find({"size": {"$gte": 5}})) == 2
    assert len(coll.find({"size": {"$lt": 5}})) == 1
    assert len(coll.find({"size": {"$in": [1, 9]}})) == 2
    assert len(coll.find({"kind": {"$ne": "meta"}})) == 2


def test_find_unknown_operator(coll):
    with pytest.raises(DocStoreError):
        coll.find({"size": {"$regex": "x"}})


def test_find_one(coll):
    assert coll.find_one({"kind": "meta"})["size"] == 1
    assert coll.find_one({"kind": "nothing"}) is None


def test_count(coll):
    assert coll.count() == 3
    assert coll.count({"kind": "cluster"}) == 2


def test_index_accelerated_lookup(coll):
    coll.create_index("kind")
    assert coll.has_index("kind")
    assert len(coll.find({"kind": "cluster"})) == 2


def test_multikey_index(coll):
    coll.create_index("classes")
    assert len(coll.find({"classes": {"$in": [2]}})) == 2
    assert len(coll.find({"classes": {"$in": [3]}})) == 1


def test_index_maintained_on_insert(coll):
    coll.create_index("kind")
    coll.insert_one({"kind": "cluster"})
    assert len(coll.find({"kind": "cluster"})) == 3


def test_delete(coll):
    doc = coll.find_one({"kind": "meta"})
    coll.delete(doc["_id"])
    assert coll.count({"kind": "meta"}) == 0
    with pytest.raises(DocStoreError):
        coll.delete(doc["_id"])


def test_delete_with_index(coll):
    coll.create_index("kind")
    doc = coll.find_one({"kind": "cluster"})
    coll.delete(doc["_id"])
    assert len(coll.find({"kind": "cluster"})) == 1


def test_update_one(coll):
    doc = coll.find_one({"kind": "meta"})
    coll.create_index("kind")
    coll.update_one(doc["_id"], {"kind": "renamed"})
    assert coll.count({"kind": "meta"}) == 0
    assert coll.count({"kind": "renamed"}) == 1
    with pytest.raises(DocStoreError):
        coll.update_one(99999, {"a": 1})


def test_update_one_is_copy_on_write(coll):
    """The stored document dict is replaced, never mutated: earlier
    references (find results, staged clones) keep the old version."""
    doc = coll.find_one({"kind": "meta"})
    before = coll.get(doc["_id"])
    coll.update_one(doc["_id"], {"size": 2})
    assert before["size"] == 1          # the old dict did not move
    assert coll.get(doc["_id"])["size"] == 2
    assert coll.get(doc["_id"]) is not before


def test_update_one_mid_fault_leaves_state_intact(coll):
    """Regression: a fault during index maintenance (an unindexable
    value) must leave both the stored document and every index exactly
    as they were -- no index pointing at changed keys."""
    coll.create_index("kind")
    doc = coll.find_one({"kind": "meta"})
    stored_before = coll.get(doc["_id"])
    with pytest.raises(TypeError):
        coll.update_one(doc["_id"], {"kind": {"un": "hashable"}})
    assert coll.get(doc["_id"]) is stored_before
    assert coll.get(doc["_id"])["kind"] == "meta"
    assert coll.count({"kind": "meta"}) == 1  # index still intact
    assert coll.updates == 0


def test_clone_isolation(coll):
    coll.create_index("kind")
    twin = coll.clone()
    doc = coll.find_one({"kind": "meta"})
    coll.update_one(doc["_id"], {"kind": "renamed"})
    coll.insert_one({"kind": "extra"})
    assert twin.count({"kind": "meta"}) == 1
    assert twin.count({"kind": "renamed"}) == 0
    assert twin.count({"kind": "extra"}) == 0
    assert len(coll) == len(twin) + 1
    # and the other direction: clone writes stay out of the original
    twin.delete(twin.find_one({"kind": "cluster"})["_id"])
    assert coll.count({"kind": "cluster"}) == 2


def test_staged_commit_swap():
    store = DocumentStore()
    store.collection("c").insert_one({"v": "live"})
    staged = store.stage("c")
    assert store.stage("c") is staged  # accumulates across calls
    staged.insert_one({"v": "staged"})
    assert len(store.collection("c")) == 1  # not visible before commit
    store.commit_staged(["c"])
    assert len(store.collection("c")) == 2
    assert store.staged_names() == []


def test_commit_unstaged_rejected():
    store = DocumentStore()
    store.stage("a")
    with pytest.raises(DocStoreError):
        store.commit_staged(["a", "b"])
    # the failed commit swapped nothing
    assert store.staged_names() == ["a"]


def test_discard_staged():
    store = DocumentStore()
    store.collection("c").insert_one({"v": "live"})
    store.stage("c").insert_one({"v": "staged"})
    store.drop_staged("d")
    assert store.discard_staged() == ["c", "d"]
    assert len(store.collection("c")) == 1
    assert store.staged_names() == []


def test_drop_staged_is_wholesale_replacement():
    store = DocumentStore()
    store.collection("c").insert_one({"v": "live"})
    store.drop_staged("c")
    store.stage("c").insert_one({"v": "fresh"})
    store.commit_staged(["c"])
    docs = store.collection("c").find()
    assert [d["v"] for d in docs] == ["fresh"]


def test_store_collections():
    store = DocumentStore()
    store.collection("a").insert_one({"x": 1})
    assert store.collection("a") is store.collection("a")
    assert store.collection_names() == ["a"]
    store.drop("a")
    assert store.collection_names() == []


def test_persistence_round_trip(tmp_path):
    store = DocumentStore()
    c = store.collection("clusters")
    c.insert_many([{"id": i, "top_k": [i, i + 1]} for i in range(10)])
    c.create_index("id")
    path = os.path.join(tmp_path, "store.json")
    store.save(path)

    loaded = DocumentStore.load(path)
    lc = loaded.collection("clusters")
    assert len(lc) == 10
    assert lc.has_index("id")
    assert lc.find_one({"id": 7})["top_k"] == [7, 8]
    # ids continue after reload without collision
    new_id = lc.insert_one({"id": 10})
    assert new_id == 10


# -- doc-level deltas (the fabric mirror wire) --------------------------------


def _mirror_of(c):
    """A mirror the way the fabric seeds one: a full-snapshot rebuild."""
    return Collection.from_json_obj(c.to_json_obj())


def test_first_delta_ships_full_then_doc_level(coll):
    envelope, token = coll.delta_snapshot(None)
    assert envelope["kind"] == "cfull"  # no shared baseline yet
    assert coll.delta_token == token
    doc_id = coll.insert_one({"kind": "x", "size": 2})
    envelope, token2 = coll.delta_snapshot(token)
    assert envelope["kind"] == "cdelta"
    assert [d["_id"] for d in envelope["upserts"]] == [doc_id]
    assert envelope["removes"] == []
    assert token2 != token


def test_delta_round_trip_matches_producer_order(coll):
    coll.create_index("kind")
    _, token = coll.delta_snapshot(None)
    mirror = _mirror_of(coll)
    big = coll.insert_one({"kind": "cluster", "size": 99})
    coll.update_one(coll.find_one({"kind": "meta"})["_id"], {"size": 7})
    coll.delete(coll.find_one({"kind": "cluster"})["_id"])
    envelope, _ = coll.delta_snapshot(token)
    assert envelope["kind"] == "cdelta"
    touched = mirror.apply_delta(envelope)
    assert touched == len(envelope["upserts"]) + len(envelope["removes"])
    # bit-identical content AND scan order (mirror snapshots feed
    # worker restarts, which replay scans in insertion order)
    assert mirror.to_json_obj()["docs"] == coll.to_json_obj()["docs"]
    assert [d["_id"] for d in mirror.find({})] == [
        d["_id"] for d in coll.find({})
    ]
    # the index came along and still accelerates
    assert mirror.find_one({"kind": "cluster", "size": 99})["_id"] == big


def test_delta_resets_dirty_set(coll):
    _, token = coll.delta_snapshot(None)
    coll.insert_one({"kind": "x"})
    envelope, token2 = coll.delta_snapshot(token)
    assert len(envelope["upserts"]) == 1
    envelope, _ = coll.delta_snapshot(token2)
    assert envelope["kind"] == "cdelta"
    assert envelope["upserts"] == [] and envelope["removes"] == []


def test_stale_basis_token_falls_back_to_full(coll):
    _, token = coll.delta_snapshot(None)
    rebuilt = _mirror_of(coll)  # a rebuild does not share the lineage
    assert rebuilt.delta_token is None
    envelope, _ = rebuilt.delta_snapshot(token)
    assert envelope["kind"] == "cfull"


def test_clone_carries_delta_lineage(coll):
    """A staged checkpoint committed over the live name still
    qualifies for a doc-level delta against the shipped baseline."""
    _, token = coll.delta_snapshot(None)
    mirror = _mirror_of(coll)
    twin = coll.clone()
    new_id = twin.insert_one({"kind": "staged", "size": 3})
    envelope, _ = twin.delta_snapshot(token)
    assert envelope["kind"] == "cdelta"
    assert [d["_id"] for d in envelope["upserts"]] == [new_id]
    mirror.apply_delta(envelope)
    assert mirror.to_json_obj()["docs"] == twin.to_json_obj()["docs"]


def test_store_staged_commit_keeps_doc_delta_eligibility():
    store = DocumentStore()
    c = store.collection("wal")
    c.insert_one({"seq": 0})
    _, token = c.delta_snapshot(None)
    mirror = _mirror_of(c)
    staged = store.stage("wal")
    staged.insert_one({"seq": 1})
    store.commit_staged(["wal"])
    live = store.collection("wal")
    envelope, _ = live.delta_snapshot(token)
    assert envelope["kind"] == "cdelta"
    mirror.apply_delta(envelope)
    assert mirror.to_json_obj()["docs"] == live.to_json_obj()["docs"]


def test_to_json_obj_caches_unchanged_docs(coll):
    first = coll.to_json_obj()["docs"]
    assert coll.to_json_obj()["docs"] is first  # O(1): same frozen list
    coll.insert_one({"kind": "y"})
    second = coll.to_json_obj()["docs"]
    assert second is not first  # any write invalidates via fingerprint
    assert len(second) == len(first) + 1
