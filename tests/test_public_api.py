"""The public API surface stays importable and coherent."""

import repro


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_headline_types_exported():
    from repro import (
        AccuracyTarget,
        FocusConfig,
        FocusSystem,
        GPULedger,
        IngestAllBaseline,
        Policy,
        QueryAllBaseline,
        STREAMS,
    )

    assert len(STREAMS) == 13
    assert Policy.BALANCE.value == "balance"


def test_subpackages_importable():
    import repro.baselines
    import repro.cnn
    import repro.core
    import repro.detect
    import repro.eval
    import repro.fabric
    import repro.sched
    import repro.storage
    import repro.video

    for pkg in (repro.cnn, repro.core, repro.video, repro.detect):
        assert pkg.__doc__
