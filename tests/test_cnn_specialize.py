"""Unit tests for per-stream CNN specialization (Section 4.3)."""

import numpy as np
import pytest

from repro.cnn.specialize import (
    OTHER_CLASS,
    SpecializedClassifier,
    head_classes_from_histogram,
    specialization_ladder,
    specialize,
)
from repro.cnn.zoo import cheap_cnn, resnet152


def test_head_classes_from_histogram():
    hist = {3: 100, 7: 50, 9: 200, 11: 1}
    assert head_classes_from_histogram(hist, 2) == [9, 3]
    assert head_classes_from_histogram(hist, 10) == [9, 3, 7, 11]
    with pytest.raises(ValueError):
        head_classes_from_histogram(hist, 0)


def test_specialize_requires_histogram():
    with pytest.raises(ValueError):
        specialize(cheap_cnn(1), {}, 5, "s")


def test_specialized_much_cheaper_than_gt(spec_model, gt_model):
    """Specialized models are 7x-71x+ cheaper than GT (Section 4.3)."""
    factor = spec_model.cheaper_than(gt_model)
    assert 40 <= factor <= 150


def test_specialized_cost_floor():
    """There is a floor on how cheap a useful model can get."""
    tiny = specialize(cheap_cnn(3), {1: 10, 2: 5}, 2, "s", cost_divisor=50.0)
    assert tiny.cheaper_than(resnet152()) <= 150


def test_small_k_suffices(spec_model):
    """Specialized models reach high recall at K=2-4 vs 60-200 generic
    (Section 4.3)."""
    assert spec_model.expected_recall_at_k(4) > 0.95
    assert cheap_cnn(1).expected_recall_at_k(4) < 0.5


def test_space_tokens(spec_model):
    tokens = spec_model.space_tokens()
    assert tokens[-1] == OTHER_CLASS
    assert len(tokens) == spec_model.ls + 1


def test_map_to_space(spec_model, small_table):
    mapped = spec_model.map_to_space(small_table.class_id)
    in_head = np.isin(small_table.class_id, spec_model.head_classes)
    assert (mapped[in_head] == small_table.class_id[in_head]).all()
    assert (mapped[~in_head] == OTHER_CLASS).all()


def test_query_token(spec_model):
    head = int(spec_model.head_classes[0])
    assert spec_model.query_token(head) == head
    assert spec_model.query_token(999) == OTHER_CLASS


def test_ranks_within_space(spec_model, small_table):
    ranks = spec_model.ranks(small_table)
    assert ranks.min() >= 1
    assert ranks.max() <= spec_model.space_size


def test_membership_head_class(spec_model, small_table):
    head = int(spec_model.head_classes[0])
    member = spec_model.topk_membership(small_table, head, 4)
    of_class = small_table.class_id == head
    if of_class.any():
        assert member[of_class].mean() > 0.9


def test_membership_other_routes_tail(spec_model, small_table):
    member = spec_model.topk_membership(small_table, OTHER_CLASS, 4)
    tail = ~np.isin(small_table.class_id, spec_model.head_classes)
    if tail.any():
        assert member[tail].mean() > 0.9


def test_membership_rejects_unknown_class(spec_model, small_table):
    unknown = 999
    assert unknown not in spec_model.head_set
    with pytest.raises(ValueError):
        spec_model.topk_membership(small_table, unknown, 4)


def test_topk_list_tokens_only(spec_model):
    ranked = spec_model.topk_list(777, int(spec_model.head_classes[0]), 1.0, 4)
    assert set(ranked) <= set(spec_model.space_tokens())
    assert len(ranked) == len(set(ranked))


def test_predicted_top1_in_space(spec_model, tiny_table):
    predicted = spec_model.predicted_top1(tiny_table)
    assert set(np.unique(predicted)) <= set(spec_model.space_tokens())


def test_duplicate_head_rejected():
    from repro.cnn.costs import ArchSpec

    with pytest.raises(ValueError):
        SpecializedClassifier(
            name="x",
            arch=ArchSpec(family="specialized", conv_layers=5, gflops_override=0.1),
            dispersion=0.5,
            head_classes=[1, 1],
            source_name="src",
        )


def test_empty_head_rejected():
    from repro.cnn.costs import ArchSpec

    with pytest.raises(ValueError):
        SpecializedClassifier(
            name="x",
            arch=ArchSpec(family="specialized", conv_layers=5, gflops_override=0.1),
            dispersion=0.5,
            head_classes=[],
            source_name="src",
        )


def test_ladder_clamps_ls():
    hist = {1: 10, 2: 8, 3: 5}
    ladder = specialization_ladder([cheap_cnn(1)], hist, "s", ls_values=(5, 10))
    # both ls values clamp to 3 -> deduplicated to one per divisor
    names = {m.name for m in ladder}
    assert all(m.ls == 3 for m in ladder)
    assert len(names) == len(ladder)


def test_ladder_empty_histogram():
    assert specialization_ladder([cheap_cnn(1)], {}, "s") == []


def test_per_stream_models_independent(small_table):
    hist = small_table.class_histogram()
    a = specialize(cheap_cnn(1), hist, 5, "stream_a")
    b = specialize(cheap_cnn(1), hist, 5, "stream_b")
    assert a.salt != b.salt
    ra, rb = a.ranks(small_table), b.ranks(small_table)
    assert not np.array_equal(ra, rb)


def test_invalid_divisor(small_table):
    with pytest.raises(ValueError):
        specialize(cheap_cnn(1), small_table.class_histogram(), 5, "s", cost_divisor=0)
