"""Unit tests for the detection substrate (background, blobs, detector)."""

import numpy as np
import pytest

from repro.detect.background import RunningGaussianBackground
from repro.detect.blobs import Blob, extract_blobs
from repro.detect.detector import MotionDetector, PixelDiffFilter
from repro.video.frames import FrameRenderer
from repro.video.profiles import get_profile
from repro.video.tracks import TrackGenerator


def _static_frame(value=100.0, shape=(32, 48)):
    return np.full(shape, value)


class TestBackground:
    def test_first_frame_no_foreground(self):
        bg = RunningGaussianBackground()
        mask = bg.apply(_static_frame())
        assert not mask.any()

    def test_static_scene_stays_background(self):
        bg = RunningGaussianBackground()
        for _ in range(10):
            mask = bg.apply(_static_frame())
        assert not mask.any()

    def test_moving_object_detected(self):
        bg = RunningGaussianBackground()
        for _ in range(5):
            bg.apply(_static_frame())
        frame = _static_frame()
        frame[10:20, 10:20] = 250.0
        mask = bg.apply(frame)
        assert mask[12:18, 12:18].all()
        assert not mask[:5, :5].any()

    def test_persistent_change_absorbed(self):
        """A permanently-changed region eventually becomes background."""
        bg = RunningGaussianBackground(learning_rate=0.2)
        for _ in range(5):
            bg.apply(_static_frame())
        changed = _static_frame()
        changed[0:8, 0:8] = 200.0
        for _ in range(600):
            mask = bg.apply(changed)
        assert not mask[2:6, 2:6].any()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RunningGaussianBackground(learning_rate=0.0)
        with pytest.raises(ValueError):
            RunningGaussianBackground(threshold_sigmas=-1)

    def test_background_image_requires_frames(self):
        bg = RunningGaussianBackground()
        with pytest.raises(RuntimeError):
            bg.background_image()
        bg.apply(_static_frame())
        img = bg.background_image()
        assert img.dtype == np.uint8

    def test_rejects_color_frames(self):
        bg = RunningGaussianBackground()
        with pytest.raises(ValueError):
            bg.apply(np.zeros((4, 4, 3)))


class TestBlobs:
    def test_single_blob(self):
        mask = np.zeros((40, 40), dtype=bool)
        mask[10:20, 5:25] = True
        blobs = extract_blobs(mask, min_area=10, dilate_iterations=0)
        assert len(blobs) == 1
        assert blobs[0].bbox == (5, 10, 20, 10)
        assert blobs[0].area == 200

    def test_min_area_filters_noise(self):
        mask = np.zeros((40, 40), dtype=bool)
        mask[0, 0] = True  # single noise pixel
        mask[10:20, 10:20] = True
        blobs = extract_blobs(mask, min_area=24, dilate_iterations=0)
        assert len(blobs) == 1

    def test_dilation_merges_fragments(self):
        mask = np.zeros((40, 40), dtype=bool)
        mask[10:20, 10:14] = True
        mask[10:20, 15:19] = True  # 1px gap
        merged = extract_blobs(mask, min_area=10, dilate_iterations=1)
        split = extract_blobs(mask, min_area=10, dilate_iterations=0)
        assert len(merged) == 1
        assert len(split) == 2

    def test_sorted_by_area(self):
        mask = np.zeros((60, 60), dtype=bool)
        mask[0:10, 0:10] = True
        mask[20:50, 20:50] = True
        blobs = extract_blobs(mask, min_area=10, dilate_iterations=0)
        assert blobs[0].area >= blobs[1].area

    def test_iou(self):
        a = Blob(x=0, y=0, w=10, h=10, area=100)
        b = Blob(x=0, y=0, w=10, h=10, area=100)
        c = Blob(x=100, y=100, w=5, h=5, area=25)
        assert a.iou(b) == pytest.approx(1.0)
        assert a.iou(c) == 0.0

    def test_invalid_mask_shape(self):
        with pytest.raises(ValueError):
            extract_blobs(np.zeros((2, 2, 2), dtype=bool))


class TestMotionDetector:
    @pytest.fixture(scope="class")
    def clip(self):
        from tests.test_video_frames import _dense_tracks

        return FrameRenderer().render(_dense_tracks(duration=6.0), 6.0, fps=5.0)

    def test_detects_rendered_objects(self, clip):
        detector = MotionDetector()
        per_frame = detector.process_clip(clip.frames)
        # after warm-up, most frames with ground-truth boxes have detections
        hits = 0
        total = 0
        for f in range(5, clip.num_frames):
            if clip.boxes[f]:
                total += 1
                if per_frame[f]:
                    hits += 1
        assert total > 0
        assert hits / total > 0.6

    def test_detection_overlaps_truth(self, clip):
        detector = MotionDetector()
        per_frame = detector.process_clip(clip.frames)
        overlaps = 0
        checked = 0
        for f in range(5, clip.num_frames):
            for det in per_frame[f]:
                for box in clip.boxes[f]:
                    gt = Blob(x=box.x, y=box.y, w=box.w, h=box.h, area=box.w * box.h)
                    if det.blob.iou(gt) > 0.3:
                        overlaps += 1
                        break
                checked += 1
        if checked:
            assert overlaps / checked > 0.5

    def test_crop_shape_matches_blob(self, clip):
        detector = MotionDetector()
        for dets in detector.process_clip(clip.frames):
            for det in dets:
                assert det.crop.shape == (det.blob.h, det.blob.w)


class TestPixelDiffFilter:
    def _detection(self, frame_idx, x, value):
        crop = np.full((10, 10), value, dtype=np.uint8)
        blob = Blob(x=x, y=0, w=10, h=10, area=100)
        from repro.detect.detector import DetectedObject

        return DetectedObject(frame_idx=frame_idx, blob=blob, crop=crop)

    def test_duplicate_suppressed(self):
        filt = PixelDiffFilter()
        novel, dups = filt.filter_frame([self._detection(0, 5, 200)])
        assert len(novel) == 1 and not dups
        novel, dups = filt.filter_frame([self._detection(1, 6, 201)])
        assert not novel and len(dups) == 1
        assert filt.suppression_ratio == pytest.approx(0.5)

    def test_different_content_not_suppressed(self):
        filt = PixelDiffFilter()
        filt.filter_frame([self._detection(0, 5, 200)])
        novel, dups = filt.filter_frame([self._detection(1, 5, 90)])
        assert len(novel) == 1 and not dups

    def test_moved_object_not_suppressed(self):
        filt = PixelDiffFilter()
        filt.filter_frame([self._detection(0, 0, 200)])
        novel, dups = filt.filter_frame([self._detection(1, 50, 200)])
        assert len(novel) == 1

    def test_reset(self):
        filt = PixelDiffFilter()
        filt.filter_frame([self._detection(0, 5, 200)])
        filt.reset()
        assert filt.suppression_ratio == 0.0
        novel, _ = filt.filter_frame([self._detection(1, 5, 200)])
        assert len(novel) == 1
