"""Unit tests for observation synthesis."""

import numpy as np
import pytest

from repro.video.synthesis import (
    ObservationTable,
    SceneGenerator,
    generate_observations,
    observations_from_tracks,
)
from repro.video.profiles import get_profile
from repro.video.tracks import TrackGenerator


def test_rows_sorted_by_frame(small_table):
    assert (np.diff(small_table.frame_idx) >= 0).all()


def test_deterministic(small_table):
    again = generate_observations("auburn_c", 60.0, 30.0)
    np.testing.assert_array_equal(small_table.class_id, again.class_id)
    np.testing.assert_array_equal(small_table.time_s, again.time_s)


def test_frame_idx_consistent_with_time(small_table):
    np.testing.assert_array_equal(
        small_table.frame_idx, np.floor(small_table.time_s * small_table.fps).astype(np.int64)
    )


def test_observations_per_track_match_duration(small_table):
    """A track visible v seconds yields ~v*fps observations."""
    track_ids, counts = np.unique(small_table.track_id, return_counts=True)
    # every track has at least one observation and no more than window*fps
    assert counts.min() >= 1
    assert counts.max() <= 60.0 * 30.0 + 1


def test_empty_frame_fraction_in_paper_band():
    """One-third to one-half of frames have no objects (Section 2.2.1)."""
    table = generate_observations("auburn_c", 600.0, 30.0)
    assert 0.2 <= table.empty_frame_fraction() <= 0.6


def test_select_preserves_metadata(small_table):
    mask = small_table.class_id == small_table.class_id[0]
    sub = small_table.select(mask)
    assert sub.stream == small_table.stream
    assert sub.fps == small_table.fps
    assert len(sub) == int(mask.sum())


def test_time_range_bounds(small_table):
    sub = small_table.time_range(10.0, 20.0)
    assert (sub.time_s >= 10.0).all()
    assert (sub.time_s < 20.0).all()


def test_scattered_sample_spans_window(small_table):
    sample = small_table.scattered_sample(20.0, chunk_seconds=5.0)
    assert len(sample) > 0
    assert sample.time_s.max() - sample.time_s.min() > 10.0  # spread out


def test_scattered_sample_validates():
    table = generate_observations("lausanne", 20.0, 30.0)
    with pytest.raises(ValueError):
        table.scattered_sample(0.0)


def test_sample_fraction():
    table = generate_observations("auburn_c", 60.0, 30.0)
    sub = table.sample_fraction(0.5, seed=1)
    assert 0.3 * len(table) <= len(sub) <= 0.7 * len(table)
    with pytest.raises(ValueError):
        table.sample_fraction(1.5)


def test_observation_seeds_unique_within_track(small_table):
    """Each observation gets a distinct deterministic seed."""
    seeds = small_table.observation_seeds()
    track = small_table.track_id == small_table.track_id[0]
    assert len(np.unique(seeds[track])) == int(track.sum())


def test_observation_seeds_stable(small_table):
    np.testing.assert_array_equal(
        small_table.observation_seeds(), small_table.observation_seeds()
    )


def test_dominant_classes_cover_95pct(small_table):
    dom = small_table.dominant_classes(0.95)
    hist = small_table.class_histogram()
    covered = sum(hist[c] for c in dom) / len(small_table)
    assert covered >= 0.95


def test_class_histogram_totals(small_table):
    hist = small_table.class_histogram()
    assert sum(hist.values()) == len(small_table)


def test_empty_window_is_valid():
    profile = get_profile("lausanne")
    tracks = TrackGenerator(profile).generate(1.0)
    table = observations_from_tracks("lausanne", tracks, 0.0, 30.0)
    # zero-duration window: no visible observations, still a valid table
    assert isinstance(table, ObservationTable)


def test_column_length_validation():
    with pytest.raises(ValueError):
        ObservationTable(
            stream="x",
            fps=30,
            duration_s=1.0,
            track_id=np.zeros(2, dtype=np.int64),
            class_id=np.zeros(3, dtype=np.int64),
            time_s=np.zeros(2),
            frame_idx=np.zeros(2, dtype=np.int64),
            difficulty=np.zeros(2),
            appearance_seed=np.zeros(2, dtype=np.int64),
            obs_in_track=np.zeros(2, dtype=np.int64),
        )


def test_scene_generator_distribution_accessible():
    gen = SceneGenerator(get_profile("auburn_c"))
    assert gen.distribution.num_present > 0


def test_invalid_fps():
    gen = SceneGenerator(get_profile("auburn_c"))
    with pytest.raises(ValueError):
        gen.generate(10.0, fps=0)
