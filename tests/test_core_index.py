"""Unit tests for the top-K index (materialized and lazy)."""

import numpy as np
import pytest

from repro.core.clustering import cluster_table
from repro.core.index import ClusterEntry, LazyTopKIndex, TopKIndex
from repro.storage.docstore import DocumentStore


@pytest.fixture(scope="module")
def clusters(tiny_table, spec_model_tiny):
    return cluster_table(tiny_table, spec_model_tiny, threshold=0.12)


@pytest.fixture(scope="module")
def spec_model_tiny(tiny_table):
    from repro.cnn.specialize import specialize
    from repro.cnn.zoo import cheap_cnn

    return specialize(cheap_cnn(1), tiny_table.class_histogram(), 3, "lausanne")


@pytest.fixture(scope="module")
def built(tiny_table, spec_model_tiny, clusters):
    return TopKIndex.build(tiny_table, spec_model_tiny, 2, clusters)


@pytest.fixture(scope="module")
def lazy(tiny_table, spec_model_tiny, clusters):
    return LazyTopKIndex(tiny_table, spec_model_tiny, 2, clusters)


class TestMaterialized:
    def test_every_cluster_indexed(self, built, clusters):
        assert built.num_clusters == clusters.num_clusters

    def test_entries_bounded_by_k(self, built):
        for entry in built.entries():
            assert 1 <= len(entry.top_k) <= built.k

    def test_lookup_rank_positions(self, built):
        """kx filtering honours the stored rank positions."""
        token = built.classes()[0]
        full = set(built.lookup(token))
        narrowed = set(built.lookup(token, kx=1))
        assert narrowed <= full

    def test_lookup_kx_validation(self, built):
        token = built.classes()[0]
        with pytest.raises(ValueError):
            built.lookup(token, kx=0)
        with pytest.raises(ValueError):
            built.lookup(token, kx=built.k + 1)

    def test_lookup_time_range(self, built, tiny_table):
        token = built.classes()[0]
        hits = built.lookup(token, time_range=(0.0, 5.0))
        for cid in hits:
            assert built.cluster(cid).first_time_s < 5.0

    def test_members_and_frames_align(self, built, tiny_table):
        for entry in built.entries():
            members = built.members(entry.cluster_id)
            frames = built.frames(entry.cluster_id)
            assert len(members) == len(frames) == entry.size
            np.testing.assert_array_equal(tiny_table.frame_idx[members], frames)

    def test_duplicate_cluster_rejected(self, built):
        entry = next(iter(built.entries()))
        with pytest.raises(ValueError):
            built.add_cluster(entry, np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.int64))

    def test_docstore_round_trip(self, built):
        store = DocumentStore()
        built.to_docstore(store)
        loaded = TopKIndex.from_docstore(store, built.stream)
        assert loaded.num_clusters == built.num_clusters
        assert loaded.num_entries == built.num_entries
        token = built.classes()[0]
        assert set(loaded.lookup(token)) == set(built.lookup(token))

    def test_docstore_missing_stream(self):
        with pytest.raises(KeyError):
            TopKIndex.from_docstore(DocumentStore(), "nothing")


class TestLazy:
    def test_same_shape_as_materialized(self, lazy, built):
        assert lazy.num_clusters == built.num_clusters

    def test_lookup_deterministic(self, lazy):
        token = -1  # OTHER always exists for a specialized model
        a = lazy.lookup(token)
        b = lazy.lookup(token)
        assert a == b

    def test_lookup_kx_narrows(self, lazy, spec_model_tiny):
        token = int(spec_model_tiny.head_classes[0])
        assert len(lazy.lookup(token, kx=1)) <= len(lazy.lookup(token))

    def test_lookup_kx_validation(self, lazy):
        with pytest.raises(ValueError):
            lazy.lookup(-1, kx=0)
        with pytest.raises(ValueError):
            lazy.lookup(-1, kx=99)

    def test_cluster_entries(self, lazy, tiny_table):
        entry = lazy.cluster(0)
        assert isinstance(entry, ClusterEntry)
        assert entry.centroid_class == tiny_table.class_id[entry.centroid_row]
        assert entry.size == len(lazy.members(0))

    def test_true_class_clusters_found(self, lazy, tiny_table, spec_model_tiny):
        """Clusters whose centroid is a head class are discoverable by
        querying that class (recall of the index itself)."""
        head = int(spec_model_tiny.head_classes[0])
        hits = lazy.lookup(head)
        centroid_hits = sum(
            1 for cid in hits if lazy.cluster(cid).centroid_class == head
        )
        total = sum(
            1
            for cid in range(lazy.num_clusters)
            if lazy.cluster(cid).centroid_class == head
        )
        if total:
            assert centroid_hits / total > 0.85

    def test_materialize_matches_lazy_structure(self, lazy):
        explicit = lazy.materialize()
        assert explicit.num_clusters == lazy.num_clusters
        for cid in range(lazy.num_clusters):
            assert explicit.cluster(cid).size == lazy.cluster(cid).size
            np.testing.assert_array_equal(explicit.members(cid), lazy.members(cid))

    def test_to_docstore_via_materialize(self, lazy):
        store = DocumentStore()
        lazy.to_docstore(store)
        loaded = TopKIndex.from_docstore(store, lazy.stream)
        assert loaded.num_clusters == lazy.num_clusters
