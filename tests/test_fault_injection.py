"""FaultyStore property/fuzz tests: the durability protocol under fire.

Covers the failure modes the journal + atomic-checkpoint design claims
to survive: torn multi-document writes, duplicated (at-least-once)
journal appends, stale-epoch zombie checkpoints, and checksum guards
over truncated or tampered journals and state documents.
"""

import numpy as np
import pytest

from repro.core.streaming import StreamIngestor
from repro.storage.docstore import DocumentStore
from repro.storage.faults import FaultInjected, FaultyStore
from repro.storage.journal import (
    CHECKPOINT_COLLECTION,
    JOURNAL_PREFIX,
    STATE_PREFIX,
    IngestJournal,
    JournalCorruption,
    StaleEpochError,
    committed_checkpoint,
    load_ingest_state,
    reset_stream,
)


@pytest.fixture()
def stream_setup(seeded_workload):
    """One small stream, chunked, with its tuning-free config."""
    tables, config = seeded_workload
    table = tables["auburn_c"]
    frames = table.frame_idx
    size = len(table)
    bounds = [0]
    for i in range(1, 4):
        stop = size * i // 4
        while 0 < stop < size and frames[stop] == frames[stop - 1]:
            stop += 1
        bounds.append(stop)
    bounds.append(size)
    chunks = [table.slice(a, b) for a, b in zip(bounds, bounds[1:])]
    return table, config, chunks


def open_journaled(store, table, config, index_mode="materialized"):
    return StreamIngestor(
        config,
        table.stream,
        fps=table.fps,
        index_mode=index_mode,
        journal=IngestJournal(store, table.stream),
    )


class TestFaultyStoreUnit:
    def test_budget_exhaustion_and_log(self):
        inner = DocumentStore()
        faulty = FaultyStore(inner, fail_after_writes=2)
        coll = faulty.collection("c")
        coll.insert_one({"a": 1})
        coll.insert_one({"a": 2})
        with pytest.raises(FaultInjected) as info:
            coll.insert_one({"a": 3})
        assert info.value.write_index == 2
        assert info.value.op == "insert_one"
        assert faulty.writes_applied == 2
        assert faulty.faults_injected == 1
        assert faulty.write_log == [("insert_one", "c"), ("insert_one", "c")]
        # the fault fired *before* the write: the store holds exactly two
        assert len(inner.collection("c")) == 2

    def test_torn_insert_many(self):
        """A multi-document write tears mid-batch: a prefix lands, the
        rest never does -- exactly what the journal checksums and the
        staged-checkpoint swap are built to survive."""
        inner = DocumentStore()
        faulty = FaultyStore(inner, fail_after_writes=3)
        with pytest.raises(FaultInjected):
            faulty.collection("c").insert_many({"i": i} for i in range(10))
        docs = inner.collection("c").find()
        assert [d["i"] for d in docs] == [0, 1, 2]

    def test_commit_staged_is_atomic(self):
        """The commit either never starts (fault before) or completes;
        it can never leave half the collections swapped."""
        inner = DocumentStore()
        faulty = FaultyStore(inner, fail_after_writes=1)
        faulty.stage("a").insert_one({"v": "staged"})
        inner.stage("b").insert_one({"v": "staged"})
        with pytest.raises(FaultInjected):
            faulty.commit_staged(["a", "b"])
        assert len(inner.collection("a")) == 0
        assert len(inner.collection("b")) == 0
        # with budget left, the same commit lands whole
        faulty2 = FaultyStore(inner)
        faulty2.commit_staged(["a", "b"])
        assert len(inner.collection("a")) == 1
        assert len(inner.collection("b")) == 1


class TestJournalIntegrity:
    def test_checksum_fires_on_truncated_record(self, stream_setup):
        table, config, chunks = stream_setup
        store = DocumentStore()
        ing = open_journaled(store, table, config)
        ing.push(chunks[0])
        coll = store.collection(JOURNAL_PREFIX + table.stream)
        victim = coll.find({"kind": "chunk"})[0]
        torn = {k: list(v) if isinstance(v, list) else v
                for k, v in victim["payload"]["columns"].items()}
        torn["time_s"] = torn["time_s"][: len(torn["time_s"]) // 2]
        coll.update_one(
            victim["_id"], {"payload": dict(victim["payload"], columns=torn)}
        )
        journal = IngestJournal(store, table.stream)
        with pytest.raises(JournalCorruption, match="checksum"):
            journal.records()
        with pytest.raises(JournalCorruption):
            StreamIngestor.recover(store, table.stream)

    def test_sequence_gap_detected(self, stream_setup):
        table, config, chunks = stream_setup
        store = DocumentStore()
        ing = open_journaled(store, table, config)
        for chunk in chunks[:3]:
            ing.push(chunk)
        coll = store.collection(JOURNAL_PREFIX + table.stream)
        missing = coll.find({"seq": 2})[0]
        coll.delete(missing["_id"])
        with pytest.raises(JournalCorruption, match="gap"):
            IngestJournal(store, table.stream).records()

    def test_conflicting_duplicate_seq_detected(self, stream_setup):
        table, config, chunks = stream_setup
        store = DocumentStore()
        ing = open_journaled(store, table, config)
        ing.push(chunks[0])
        coll = store.collection(JOURNAL_PREFIX + table.stream)
        record = coll.find({"seq": 1})[0]
        coll.insert_one(
            {"seq": 1, "kind": "chunk", "payload": record["payload"],
             "checksum": "not-the-same"}
        )
        with pytest.raises(JournalCorruption):
            IngestJournal(store, table.stream).records()

    def test_duplicated_appends_are_idempotent(self, stream_setup):
        """At-least-once delivery: every journal append lands twice, yet
        replay ingests each chunk exactly once."""
        table, config, chunks = stream_setup
        inner = DocumentStore()
        dup = FaultyStore.duplicating_journal(inner)
        ing = open_journaled(dup, table, config)
        for chunk in chunks:
            ing.push(chunk)
        journal_docs = inner.collection(JOURNAL_PREFIX + table.stream)
        records = IngestJournal(inner, table.stream).records()
        assert len(journal_docs) == 2 * len(records)

        recovered = StreamIngestor.recover(inner, table.stream)
        reference = StreamIngestor(
            config, table.stream, fps=table.fps, index_mode="materialized"
        )
        for chunk in chunks:
            reference.push(chunk)
        np.testing.assert_array_equal(
            recovered.clusters.assignments, reference.clusters.assignments
        )
        assert recovered.chunks_pushed == reference.chunks_pushed

    def test_seq_numbering_survives_compaction_and_double_crash(
        self, stream_setup
    ):
        """Regression: after checkpoint compaction empties the journal,
        a recovered session must continue the lineage's sequence
        numbering above the committed cursor -- restarting at 0 would
        make a *second* recovery silently filter its acknowledged
        chunks out (data loss, no error)."""
        table, config, chunks = stream_setup
        store = DocumentStore()
        ing = open_journaled(store, table, config)
        ing.push(chunks[0])
        ing.push(chunks[1])
        assert ing.checkpoint(store) == 1  # compacts: journal now empty
        assert IngestJournal(store, table.stream).last_seq() == -1

        survivor = StreamIngestor.recover(store, table.stream)  # crash 1
        survivor.push(chunks[2])  # acknowledged: must survive crash 2
        marker = committed_checkpoint(store, table.stream)
        assert IngestJournal(store, table.stream).last_seq() > marker["journal_seq"]

        twice = StreamIngestor.recover(store, table.stream)  # crash 2
        assert twice.num_rows == survivor.num_rows
        np.testing.assert_array_equal(
            twice.clusters.assignments, survivor.clusters.assignments
        )
        # and the recovered-without-pushing checkpoint cursor is sane
        assert twice.checkpoint(store) == 2

    def test_post_commit_compaction_fault_reports_landed_epoch(
        self, stream_setup
    ):
        """A fault during post-commit journal compaction must not be
        reported as a failed checkpoint: the epoch committed."""
        from repro.serve.service import QueryService
        from repro.core.system import FocusSystem

        table, config, chunks = stream_setup

        def build(store):
            system = FocusSystem()
            system.open_stream(
                table.stream, fps=table.fps, config=config,
                index_mode="materialized", wal_store=store,
            )
            system.append(table.stream, chunks[0])
            system.append(table.stream, chunks[1])
            return system

        # profile an identical twin to find the commit's write offset
        # within the checkpoint (ingest is deterministic)
        twin_faulty = FaultyStore(DocumentStore())
        twin = build(twin_faulty)
        before = twin_faulty.writes_applied
        twin.service.checkpoint_streams(
            twin_faulty, {table.stream: twin.handle(table.stream)}, strict=False
        )
        commit_offset = [
            i for i, (op, _) in enumerate(twin_faulty.write_log[before:])
            if op == "commit_staged"
        ][0]

        # real run: the journal lives on the faulty store, so compaction
        # deletes are metered; budget expires one write after the commit
        inner = DocumentStore()
        faulty = FaultyStore(inner)
        system = build(faulty)
        faulty.fail_after_writes = faulty.writes_applied + commit_offset + 2
        outcomes = system.service.checkpoint_streams(
            faulty,
            {table.stream: system.handle(table.stream)},
            strict=False,
        )
        (outcome,) = outcomes
        assert outcome.error is not None
        assert outcome.landed and outcome.committed
        assert outcome.epoch == 1
        assert committed_checkpoint(inner, table.stream)["epoch"] == 1
        # the journal kept its un-compacted suffix; recovery still works
        recovered = StreamIngestor.recover(inner, table.stream)
        assert recovered.num_rows == system.handle(table.stream).ingestor.num_rows

    def test_recover_is_idempotent(self, stream_setup):
        """Recovering twice from the same store (double replay) yields
        the same state -- replay never double-applies."""
        table, config, chunks = stream_setup
        store = DocumentStore()
        ing = open_journaled(store, table, config)
        ing.push(chunks[0])
        ing.push(chunks[1])
        ing.checkpoint(store)
        ing.push(chunks[2])
        first = StreamIngestor.recover(store, table.stream)
        second = StreamIngestor.recover(store, table.stream)
        np.testing.assert_array_equal(
            first.clusters.assignments, second.clusters.assignments
        )
        assert first.num_rows == second.num_rows == ing.num_rows
        assert first.watermark_s == second.watermark_s == ing.watermark_s


class TestCheckpointAtomicity:
    def test_torn_checkpoint_preserves_committed_snapshot(self, stream_setup):
        """A crash anywhere inside a checkpoint leaves the previous
        committed epoch fully intact -- partial writes are detectable
        (staged) and never visible."""
        table, config, chunks = stream_setup
        inner = DocumentStore()
        ing = open_journaled(inner, table, config)
        ing.push(chunks[0])
        ing.push(chunks[1])
        assert ing.checkpoint(inner) == 1
        marker_before = committed_checkpoint(inner, table.stream)
        clusters_before = {
            doc["cluster_id"]: doc["size"]
            for doc in inner.collection("clusters:%s" % table.stream).find()
        }
        ing.push(chunks[2])

        # sweep the whole second checkpoint: fault at every write inside
        profile = FaultyStore(inner)
        twin_store = DocumentStore()
        twin = open_journaled(twin_store, table, config)
        twin.push(chunks[0]); twin.push(chunks[1])
        twin.checkpoint(twin_store)
        twin.push(chunks[2])
        twin_profile = FaultyStore(twin_store)
        twin.checkpoint(twin_profile)
        n_writes = twin_profile.writes_applied
        commit_at = [
            i for i, (op, _) in enumerate(twin_profile.write_log)
            if op == "commit_staged"
        ][0]

        for budget in range(n_writes):
            faulty = FaultyStore(inner, fail_after_writes=budget)
            with pytest.raises((FaultInjected, StaleEpochError)):
                ing.checkpoint(faulty)
            if budget <= commit_at:
                # commit never ran: epoch 1 snapshot byte-for-byte intact
                assert committed_checkpoint(inner, table.stream) == marker_before
                now = {
                    doc["cluster_id"]: doc["size"]
                    for doc in inner.collection("clusters:%s" % table.stream).find()
                }
                assert now == clusters_before
                state = load_ingest_state(inner, table.stream)
                assert state["epoch"] == 1
        del profile

        # the survivor's eventual clean checkpoint must commit *correct*
        # documents: torn attempts that cleared the dirty flags mid-way
        # must not leave stale cluster sizes behind
        final_epoch = ing.checkpoint(inner)
        assert final_epoch == committed_checkpoint(inner, table.stream)["epoch"]
        recovered = StreamIngestor.recover(inner, table.stream)
        assert recovered.num_rows == ing.num_rows
        np.testing.assert_array_equal(
            recovered.clusters.assignments, ing.clusters.assignments
        )
        for cid in range(ing.index.num_clusters):
            assert recovered.index.cluster(cid) == ing.index.cluster(cid)
            np.testing.assert_array_equal(
                recovered.index.members(cid), ing.index.members(cid)
            )
        assert recovered.checkpoint(inner) == final_epoch + 1

    def test_stale_epoch_rejected(self, stream_setup):
        """A zombie session from before the crash cannot clobber the
        recovered session's snapshot."""
        table, config, chunks = stream_setup
        store = DocumentStore()
        zombie = open_journaled(store, table, config)
        zombie.push(chunks[0])
        assert zombie.checkpoint(store) == 1

        successor = StreamIngestor.recover(store, table.stream)
        successor.push(chunks[1])
        assert successor.checkpoint(store) == 2

        zombie.push(chunks[1])
        marker = committed_checkpoint(store, table.stream)
        with pytest.raises(StaleEpochError):
            zombie.checkpoint(store)
        # the rejected commit left nothing behind: marker and staging
        assert committed_checkpoint(store, table.stream) == marker
        assert store.staged_names() == []

    def test_state_checksum_guard(self, stream_setup):
        table, config, chunks = stream_setup
        store = DocumentStore()
        ing = open_journaled(store, table, config)
        ing.push(chunks[0])
        ing.checkpoint(store)
        coll = store.collection(STATE_PREFIX + table.stream)
        doc = coll.find_one({"stream": table.stream})
        tampered = dict(doc["payload"], rows=doc["payload"]["rows"] + 1)
        coll.update_one(doc["_id"], {"payload": tampered})
        with pytest.raises(JournalCorruption, match="checksum"):
            load_ingest_state(store, table.stream)
        with pytest.raises(JournalCorruption):
            StreamIngestor.recover(store, table.stream)

    def test_marker_state_epoch_disagreement(self, stream_setup):
        table, config, chunks = stream_setup
        store = DocumentStore()
        ing = open_journaled(store, table, config)
        ing.push(chunks[0])
        ing.checkpoint(store)
        marker = store.collection(CHECKPOINT_COLLECTION).find_one(
            {"stream": table.stream}
        )
        store.collection(CHECKPOINT_COLLECTION).update_one(
            marker["_id"], {"epoch": marker["epoch"] + 5}
        )
        with pytest.raises(JournalCorruption, match="disagrees"):
            load_ingest_state(store, table.stream)

    def test_fresh_journal_refuses_existing_lineage(self, stream_setup):
        table, config, chunks = stream_setup
        store = DocumentStore()
        ing = open_journaled(store, table, config)
        ing.push(chunks[0])
        with pytest.raises(Exception, match="durable state"):
            open_journaled(store, table, config)
        # wiping the lineage makes the name reusable
        reset_stream(store, table.stream)
        fresh = open_journaled(store, table, config)
        fresh.push(chunks[0])

    def test_reset_stream_wipes_stream_meta(self, stream_setup):
        """Regression: a stale previous-lineage stream-meta document
        must not survive a reset -- it would pair self-consistently
        with the next lineage's index and point load_indexes at the
        wrong table."""
        table, config, chunks = stream_setup
        store = DocumentStore()
        store.collection("stream-meta").insert_one(
            {"stream": table.stream, "duration_s": 999.0, "fps": 1.0,
             "num_rows": 7, "checksum": 42, "head_classes": None}
        )
        ing = open_journaled(store, table, config)
        ing.push(chunks[0])
        reset_stream(store, table.stream)
        assert store.collection("stream-meta").find(
            {"stream": table.stream}
        ) == []

    def test_durable_checkpoint_rejects_foreign_store(self, stream_setup):
        """Regression: committing a durable checkpoint into a store
        other than the journal's would compact WAL records whose
        covering checkpoint lives elsewhere -- acknowledged chunks
        would become unrecoverable.  The mismatch is rejected before
        anything is written; wrapping the journal's store in a fault
        injector is still allowed (same backing store)."""
        table, config, chunks = stream_setup
        inner = DocumentStore()
        ing = open_journaled(inner, table, config)
        ing.push(chunks[0])
        from repro.storage.journal import JournalError

        with pytest.raises(JournalError, match="journal's\nstore|journal's store"):
            ing.checkpoint(DocumentStore())
        # nothing committed, nothing compacted
        assert committed_checkpoint(inner, table.stream) is None
        assert IngestJournal(inner, table.stream).last_seq() == 1
        # a wrapper over the same backing store is fine
        assert ing.checkpoint(FaultyStore(inner)) == 1


class TestFuzzCrashBudgets:
    def test_random_crash_budgets_recover_bit_identical(self, stream_setup):
        """Seeded fuzz: crash at random write budgets (lazy index mode),
        recover, finish, and compare against the uninterrupted run."""
        table, config, chunks = stream_setup
        reference = StreamIngestor(
            config, table.stream, fps=table.fps, index_mode="lazy"
        )
        for chunk in chunks:
            reference.push(chunk)

        def schedule(store):
            ing = open_journaled(store, table, config, index_mode="lazy")
            for i, chunk in enumerate(chunks):
                ing.push(chunk)
                if i == 1:
                    ing.checkpoint(store)
            return ing

        profile = FaultyStore(DocumentStore())
        schedule(profile)
        total = profile.writes_applied
        bounds = np.cumsum([0] + [len(c) for c in chunks])
        rng = np.random.RandomState(7)
        budgets = sorted(set(rng.randint(1, total, size=8).tolist()))
        crashes = 0
        for budget in budgets:
            inner = DocumentStore()
            faulty = FaultyStore(inner, fail_after_writes=budget)
            try:
                ing = schedule(faulty)
            except FaultInjected:
                crashes += 1
                try:
                    ing = StreamIngestor.recover(inner, table.stream)
                except KeyError:
                    ing = open_journaled(inner, table, config, index_mode="lazy")
                k = int(np.searchsorted(bounds, ing.num_rows))
                assert bounds[k] == ing.num_rows
                for chunk in chunks[k:]:
                    ing.push(chunk)
            np.testing.assert_array_equal(
                ing.clusters.assignments, reference.clusters.assignments
            )
            assert ing.watermark_s == reference.watermark_s
        assert crashes == len(budgets)


# ---------------------------------------------------------------------------
# worker-process chaos drills (the fabric's parallel mode under fire)
# ---------------------------------------------------------------------------

class TestWorkerChaosDrills:
    """SIGKILL a shard *worker process* in the worst window -- after a
    chunk hit the WAL but before it was applied or acknowledged -- then
    let the supervisor restart it through ``ShardNode.recover``.  The
    revived shard must answer bit-identically to a shard that never
    crashed: unacknowledged work never happened durably (at-most-once),
    so the caller re-appends and ends up in the same state.
    """

    def _reference(self, table, config, chunks, index_mode):
        from repro.fabric import ShardNode

        node = ShardNode("ref")
        node.open_stream(
            table.stream,
            fps=table.fps,
            config=config,
            index_mode=index_mode,
            durable=True,
        )
        for chunk in chunks:
            node.append(table.stream, chunk)
        return node

    @pytest.mark.parametrize("index_mode", ["lazy", "materialized"])
    def test_sigkill_between_journal_append_and_checkpoint(
        self, stream_setup, index_mode
    ):
        from repro.fabric import FabricSupervisor, WorkerCrashed

        table, config, chunks = stream_setup
        stream = table.stream
        reference = self._reference(table, config, chunks, index_mode)
        ref_answer = reference.query(stream, 1)

        with FabricSupervisor(["chaos"]) as supervisor:
            client = supervisor.client("chaos")
            client.open_stream(
                stream,
                fps=table.fps,
                config=config,
                index_mode=index_mode,
                durable=True,
            )
            client.append(stream, chunks[0])
            client.append(stream, chunks[1])
            client.checkpoint(streams=[stream])
            # arm the drill: the next append dies right after the WAL
            # write, before apply/ack -- between journal and checkpoint
            client.inject_crash_after_journal(stream)
            with pytest.raises(WorkerCrashed):
                client.append(stream, chunks[2])
            assert not supervisor.alive("chaos")

            supervisor.restart("chaos", configs={stream: config})
            # at-most-once: the unacknowledged chunk never landed
            info = client.handle_info(stream)
            assert info.rows == len(chunks[0]) + len(chunks[1])
            # the caller retries the lost chunk and finishes the feed
            client.append(stream, chunks[2])
            client.append(stream, chunks[3])
            answer = client.query(stream, 1)

        np.testing.assert_array_equal(answer.frames, ref_answer.frames)
        assert answer.metrics == ref_answer.metrics
        np.testing.assert_array_equal(
            answer.result.returned_rows, ref_answer.result.returned_rows
        )

    def test_sigkill_while_idle_recovers_acked_state(self, stream_setup):
        from repro.fabric import FabricSupervisor

        table, config, chunks = stream_setup
        stream = table.stream
        reference = self._reference(table, config, chunks, "materialized")
        ref_answer = reference.query(stream, 1)

        with FabricSupervisor(["chaos"]) as supervisor:
            client = supervisor.client("chaos")
            client.open_stream(
                stream, fps=table.fps, config=config, durable=True
            )
            for chunk in chunks[:3]:
                client.append(stream, chunk)
            # no checkpoint: recovery replays the journal alone
            supervisor.kill("chaos")
            supervisor.restart("chaos", configs={stream: config})
            assert client.handle_info(stream).rows == sum(
                len(c) for c in chunks[:3]
            )
            client.append(stream, chunks[3])
            answer = client.query(stream, 1)

        np.testing.assert_array_equal(answer.frames, ref_answer.frames)
        assert answer.metrics == ref_answer.metrics

    def test_repeated_crashes_converge(self, stream_setup):
        """Crash after *every* chunk: N crash/restart cycles still end
        bit-identical to the never-crashed reference."""
        from repro.fabric import FabricSupervisor, WorkerCrashed

        table, config, chunks = stream_setup
        stream = table.stream
        reference = self._reference(table, config, chunks, "materialized")
        ref_answer = reference.query(stream, 1)

        with FabricSupervisor(["chaos"]) as supervisor:
            client = supervisor.client("chaos")
            client.open_stream(
                stream, fps=table.fps, config=config, durable=True
            )
            for chunk in chunks:
                client.inject_crash_after_journal(stream)
                with pytest.raises(WorkerCrashed):
                    client.append(stream, chunk)
                supervisor.restart("chaos", configs={stream: config})
                client.append(stream, chunk)  # retry lands it
            answer = client.query(stream, 1)

        np.testing.assert_array_equal(answer.frames, ref_answer.frames)
        assert answer.metrics == ref_answer.metrics


class TestDataPlaneReclamation:
    """SIGKILL mid-transfer for the shared-memory wire: a worker that
    dies between sealing a reply's segment and enqueuing the reply
    leaves an orphan, and commands in flight hold pooled request
    leases -- both must be reclaimed by the supervisor's kill/restart
    path, leaving a leak-free pool at shutdown."""

    def test_orphan_reply_segment_reclaimed_on_restart(self, stream_setup):
        from multiprocessing import shared_memory

        from repro.fabric import FabricSupervisor, WorkerCrashed
        from repro.fabric.worker import _reply_segment_name

        table, config, chunks = stream_setup
        stream = table.stream
        with FabricSupervisor(
            ["chaos"], use_shm=True, shm_threshold=1
        ) as supervisor:
            client = supervisor.client("chaos")
            client.open_stream(
                stream, fps=table.fps, config=config, durable=True
            )
            client.append(stream, chunks[0])
            client.inject_crash_before_reply()
            worker = supervisor._worker("chaos")
            orphan = _reply_segment_name(worker.reply_prefix, worker.next_corr)
            with pytest.raises(WorkerCrashed):
                client.append(stream, chunks[1])
            assert not supervisor.alive("chaos")
            # the worker died after sealing the reply's segment, orphaned
            # (nobody will ever gather it) -- detecting the death
            # condemned the incarnation, which probed the unacknowledged
            # corr ids and unlinked it NOW, not at some later restart
            # (PR 8: failure-time reclamation)
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=orphan)
            supervisor.restart("chaos", configs={stream: config})
            # at-most-once: the orphaned append never landed; retry does
            client.append(stream, chunks[1])
            assert client.handle_info(stream).rows == len(chunks[0]) + len(
                chunks[1]
            )
        assert supervisor.leaked_segments == []

    def test_request_leases_reclaimed_on_kill(self, stream_setup):
        from repro.fabric import FabricSupervisor

        table, config, chunks = stream_setup
        stream = table.stream
        with FabricSupervisor(
            ["chaos"], use_shm=True, shm_threshold=1
        ) as supervisor:
            client = supervisor.client("chaos")
            client.open_stream(
                stream, fps=table.fps, config=config, durable=True
            )
            client.append(stream, chunks[0])
            worker = supervisor._worker("chaos")
            # pipeline a round of appends and kill before gathering:
            # every leg's pooled request segment is still leased
            for chunk in chunks[1:3]:
                client.append_submit(stream, chunk, defer_delta=True)
            client.append_submit(stream, chunks[3])
            assert worker.request_leases
            assert supervisor._pool is not None
            assert supervisor._pool.leased_names()
            supervisor.kill("chaos")
            # kill reclaimed the leases: no concurrent reader can exist
            assert worker.request_leases == {}
            assert supervisor._pool.leased_names() == []
            supervisor.restart("chaos", configs={stream: config})
            for chunk in chunks[1:]:
                client.append(stream, chunk)
            assert client.handle_info(stream).rows == sum(
                len(c) for c in chunks
            )
        assert supervisor.leaked_segments == []
