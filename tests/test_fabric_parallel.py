"""Cross-process equivalence: worker-process fabric == in-process fabric.

The tentpole contract of the parallel mode: a :class:`FabricRouter`
over process-isolated :class:`ShardClient` workers behaves
*bit-identically* to the same router over in-process
:class:`ShardNode` shards -- every operation (open / append /
query / query_batch / checkpoint / migrate / recover), both index
modes.  The two fabrics here are fed the same streams in the same
order; each stage asserts its operation's results equal field by
field, and the serving stages additionally pin both fabrics to the
single-node reference.

The staged tests inside ``TestModeEquivalence`` run in definition
order on purpose (checkpoint feeds migrate feeds crash-recovery);
each stage documents what state it leaves behind.
"""

import numpy as np
import pytest

from repro.fabric import (
    FabricRouter,
    FabricSupervisor,
    ProtocolError,
    ShardNode,
    StreamHandleInfo,
    WorkerCrashed,
)
from repro.fabric.protocol import PROTOCOL_VERSION, Request
from repro.serve.planner import QueryRequest
from test_fabric import (
    FABRIC_STREAMS,
    assert_same_slices,
    build_single,
    frame_aligned_chunks,
)

CLASSES = [1, 2]

CHUNK_REPORT_FIELDS = (
    "chunk_rows",
    "total_rows",
    "watermark_s",
    "suppressed",
    "cnn_inferences",
    "new_clusters",
    "grown_clusters",
)


@pytest.fixture(scope="module")
def fabric_tables(table_factory):
    return {s: table_factory(s, 30.0, 10.0) for s in FABRIC_STREAMS}


def assert_answers_equal(left, right):
    """Two QueryAnswers bit-identical (latency is wall-clock: excluded)."""
    assert left.stream == right.stream
    assert left.class_id == right.class_id
    assert left.class_name == right.class_name
    np.testing.assert_array_equal(left.frames, right.frames)
    assert left.gt_inferences == right.gt_inferences
    assert left.metrics == right.metrics
    np.testing.assert_array_equal(
        left.result.returned_rows, right.result.returned_rows
    )
    assert list(left.result.matched_clusters) == list(
        right.result.matched_clusters
    )


class _Fabrics:
    """The two fabrics under comparison + the single-node reference."""

    def __init__(self, tables, config, index_mode, supervisor):
        self.tables = tables
        self.config = config
        self.index_mode = index_mode
        self.supervisor = supervisor
        self.remote = FabricRouter(supervisor.clients())
        self.local = FabricRouter(
            [ShardNode(sid) for sid in supervisor.shard_ids()]
        )
        self.single = build_single(tables, config, index_mode)

    def open_all(self):
        infos = {}
        for name in self.tables:
            kwargs = dict(
                fps=10.0, config=self.config, index_mode=self.index_mode,
                durable=True,
            )
            remote_info = self.remote.open_stream(name, **kwargs)
            self.local.open_stream(name, **kwargs)
            infos[name] = remote_info
        return infos

    def append_all(self):
        reports = {"remote": [], "local": []}
        for name, table in self.tables.items():
            for chunk in frame_aligned_chunks(table):
                reports["remote"].append(self.remote.append(name, chunk))
                reports["local"].append(self.local.append(name, chunk))
        return reports


@pytest.fixture(
    scope="module",
    params=[
        "lazy-shm",
        "materialized-shm",
        "lazy-inline",
        "materialized-inline",
    ],
)
def fabrics(request, fabric_tables, live_config):
    """index mode x wire mode: every equivalence must hold with the
    shared-memory data plane forced on (threshold 1: every bulk payload
    through segments) AND with the inline pickle fallback forced."""
    index_mode, wire = request.param.rsplit("-", 1)
    wire_kwargs = (
        {"use_shm": True, "shm_threshold": 1}
        if wire == "shm"
        else {"use_shm": False}
    )
    with FabricSupervisor(["shard-0", "shard-1"], **wire_kwargs) as supervisor:
        yield _Fabrics(fabric_tables, live_config, index_mode, supervisor)
    assert supervisor.leaked_segments == []


class TestModeEquivalence:
    """Staged: each test builds on the previous one's state."""

    def test_open_stream_equivalent(self, fabrics):
        infos = fabrics.open_all()
        for name, remote_info in infos.items():
            assert isinstance(remote_info, StreamHandleInfo)
            local_info = fabrics.local.shard_of(name).handle_info(name)
            assert remote_info == local_info
            assert remote_info.live and not remote_info.restored
        # same placement: the routers rendezvous over the same shard ids
        assert (
            fabrics.remote.placement.assignments
            == fabrics.local.placement.assignments
        )

    def test_append_reports_equivalent(self, fabrics):
        reports = fabrics.append_all()
        assert len(reports["remote"]) == len(reports["local"])
        for remote_report, local_report in zip(
            reports["remote"], reports["local"]
        ):
            assert remote_report.dispatch is None  # worker-local, dropped
            for field in CHUNK_REPORT_FIELDS:
                assert getattr(remote_report, field) == getattr(
                    local_report, field
                ), field

    def test_query_equivalent(self, fabrics):
        for name in fabrics.tables:
            for clazz in CLASSES:
                assert_answers_equal(
                    fabrics.remote.query(name, clazz),
                    fabrics.local.query(name, clazz),
                )

    def test_query_time_range_and_kx_equivalent(self, fabrics):
        for name in fabrics.tables:
            assert_answers_equal(
                fabrics.remote.query(name, 1, kx=2, time_range=(5.0, 20.0)),
                fabrics.local.query(name, 1, kx=2, time_range=(5.0, 20.0)),
            )

    def test_query_all_matches_local_and_single(self, fabrics):
        for clazz in CLASSES:
            remote_answer = fabrics.remote.query_all(clazz)
            local_answer = fabrics.local.query_all(clazz)
            assert_same_slices(remote_answer, local_answer)
            assert_same_slices(
                remote_answer, fabrics.single.query_all(clazz)
            )
            assert remote_answer.gt_inferences == local_answer.gt_inferences
            assert remote_answer.candidates == local_answer.candidates

    def test_query_batch_equivalent(self, fabrics):
        requests = [
            QueryRequest(clazz=1),
            QueryRequest(clazz=2, streams=FABRIC_STREAMS[:2]),
            QueryRequest(clazz=1, kx=2, time_range=(0.0, 15.0)),
        ]
        remote_answers = fabrics.remote.query_batch(requests)
        local_answers = fabrics.local.query_batch(requests)
        single_answers = fabrics.single.query_batch(requests)
        for remote_answer, local_answer, single_answer in zip(
            remote_answers, local_answers, single_answers
        ):
            assert_same_slices(remote_answer, local_answer)
            assert_same_slices(remote_answer, single_answer)

    def test_observability_equivalent(self, fabrics):
        """Runs *before* the crash stages on purpose: in-memory
        counters (ledger GPU-seconds, queries-served) die with a worker
        and restart at zero -- only store-derived ones survive."""
        remote_costs = fabrics.remote.cost_summary()
        local_costs = fabrics.local.cost_summary()
        assert sorted(remote_costs) == sorted(local_costs)
        for key in ("journal-appends", "journal-records", "ingest-cnn"):
            assert remote_costs[key] == local_costs[key], key
        assert fabrics.remote.counters() == fabrics.local.counters()
        remote_cache = fabrics.remote.cache_stats()
        local_cache = fabrics.local.cache_stats()
        for key in ("hits", "misses", "size"):
            assert remote_cache[key] == local_cache[key]

    def test_checkpoint_equivalent(self, fabrics):
        """Leaves both fabrics checkpointed at epoch 1."""
        remote_outcomes = fabrics.remote.checkpoint_streams()
        local_outcomes = fabrics.local.checkpoint_streams()
        assert remote_outcomes == local_outcomes
        assert all(o.committed for o in remote_outcomes)
        # a second round advances epochs identically in both modes
        assert fabrics.remote.checkpoint() == fabrics.local.checkpoint()
        # and the WAL footprint matches shard by shard
        for sid in fabrics.remote.shard_ids():
            assert (
                fabrics.remote.shard(sid).journal_counters()
                == fabrics.local.shard(sid).journal_counters()
            )

    def test_migrate_equivalent(self, fabrics):
        """Moves the first stream to its non-owning shard in *both*
        fabrics; they stay aligned for the stages after."""
        stream = FABRIC_STREAMS[0]
        source = fabrics.remote.placement.shard_of(stream)
        target = [
            sid for sid in fabrics.remote.shard_ids() if sid != source
        ][0]
        remote_report = fabrics.remote.migrate(stream, target)
        local_report = fabrics.local.migrate(stream, target)
        assert remote_report == local_report  # same dataclass, all fields
        assert fabrics.remote.placement.shard_of(stream) == target
        assert stream in fabrics.remote.shard(source).fenced()
        for clazz in CLASSES:
            assert_same_slices(
                fabrics.remote.query_all(clazz),
                fabrics.local.query_all(clazz),
            )

    def test_crash_recovery_equivalent(self, fabrics):
        """SIGKILL every worker, restart from mirrors, recover: the
        revived worker fabric still answers identically to the local
        fabric that never crashed."""
        for sid in fabrics.supervisor.shard_ids():
            fabrics.supervisor.kill(sid)
            assert not fabrics.supervisor.alive(sid)
        configs = {name: fabrics.config for name in fabrics.tables}
        recovered = []
        for sid in fabrics.supervisor.shard_ids():
            recovered.extend(
                fabrics.supervisor.restart(sid, configs=configs)
            )
        assert sorted(recovered) == sorted(fabrics.tables)
        for name in fabrics.tables:
            info = fabrics.remote.shard_of(name).handle_info(name)
            assert info.live
            assert info.rows == len(fabrics.tables[name])
        for clazz in CLASSES:
            assert_same_slices(
                fabrics.remote.query_all(clazz),
                fabrics.local.query_all(clazz),
            )

    def test_post_recovery_handles_equivalent(self, fabrics):
        """Recovered sessions are append-ready at the same point: the
        revived workers' handles match the never-crashed local fabric
        field by field (watermark, rows, liveness)."""
        for name in fabrics.tables:
            remote_info = fabrics.remote.shard_of(name).handle_info(name)
            local_info = fabrics.local.shard_of(name).handle_info(name)
            assert remote_info.watermark_s == local_info.watermark_s
            assert remote_info.rows == local_info.rows
            assert remote_info.live == local_info.live

    def test_post_recovery_durable_counters_survive(self, fabrics):
        """After the crash/restart stages only store-derived counters
        survive (in-memory ones restarted at zero); the durable WAL
        footprint still matches the never-crashed local fabric."""
        remote_costs = fabrics.remote.cost_summary()
        local_costs = fabrics.local.cost_summary()
        assert remote_costs["journal-records"] == local_costs["journal-records"]


class TestWorkerFailureModes:
    def test_dead_worker_raises_worker_crashed(self, live_config):
        with FabricSupervisor(["solo"]) as supervisor:
            client = supervisor.client("solo")
            client.ping()
            supervisor.kill("solo")
            with pytest.raises(WorkerCrashed, match="dead"):
                client.ping()

    def test_restart_without_recover_is_empty(self, table_factory, live_config):
        with FabricSupervisor(["solo"]) as supervisor:
            client = supervisor.client("solo")
            table = table_factory("auburn_c", 20.0, 10.0)
            client.open_stream(
                "auburn_c", fps=10.0, config=live_config, durable=True
            )
            client.append("auburn_c", table)
            supervisor.kill("solo")
            assert supervisor.restart("solo", recover=False) == []
            assert client.streams() == []
            # the durable state is still in the mirror: recover revives it
            assert client.recover(configs={"auburn_c": live_config}) == [
                "auburn_c"
            ]
            assert client.handle_info("auburn_c").rows == len(table)

    def test_version_mismatch_refused_by_worker(self):
        with FabricSupervisor(["solo"]) as supervisor:
            worker = supervisor._worker("solo")
            worker.request_q.put(
                Request(
                    corr_id=worker.next_corr,
                    op="ping",
                    version=PROTOCOL_VERSION + 1,
                )
            )
            worker.pending.append(worker.next_corr)
            worker.next_corr += 1
            client = supervisor.client("solo")
            with pytest.raises(ProtocolError, match="version mismatch"):
                client._gather(worker.next_corr - 1)
            client.ping()  # the worker survived the refusal

    def test_remote_errors_carry_type_and_traceback(self, live_config):
        with FabricSupervisor(["solo"]) as supervisor:
            client = supervisor.client("solo")
            with pytest.raises(KeyError) as info:
                client.query("never-opened", 1)
            assert "never-opened" in str(info.value)
            assert "Traceback" in info.value.remote_traceback

    def test_out_of_order_gather_refused(self, live_config):
        with FabricSupervisor(["solo"]) as supervisor:
            client = supervisor.client("solo")
            first = client._submit("ping", {})
            second = client._submit("ping", {})
            with pytest.raises(ProtocolError, match="submission order"):
                second.result()
            first.result()
            second.result()

    def test_duplicate_shard_ids_refused(self):
        with pytest.raises(ValueError, match="duplicate"):
            FabricSupervisor(["a", "a"])

    def test_mixed_mode_migration_refused(self, live_config):
        from repro.fabric.migration import MigrationError

        with FabricSupervisor(["w0"]) as supervisor:
            shards = [supervisor.client("w0"), ShardNode("n1")]
            router = FabricRouter(shards)
            router.open_stream(
                "auburn_c", fps=10.0, config=live_config, durable=True
            )
            holder = router.placement.shard_of("auburn_c")
            other = [s for s in ("w0", "n1") if s != holder][0]
            with pytest.raises(MigrationError, match="fabric modes"):
                router.migrate("auburn_c", other)


class TestSupervisorLifecycle:
    def test_shutdown_is_idempotent_and_kills_workers(self):
        supervisor = FabricSupervisor(["a", "b"])
        processes = [
            supervisor._worker(sid).process for sid in supervisor.shard_ids()
        ]
        assert all(p.is_alive() for p in processes)
        supervisor.shutdown()
        assert not any(p.is_alive() for p in processes)
        supervisor.shutdown()  # second call is a no-op

    def test_store_mirrors_persist_across_restart(self, table_factory, live_config):
        """The mirror is the durable truth: what the worker acked is
        exactly what a restarted worker recovers from."""
        with FabricSupervisor(["solo"]) as supervisor:
            client = supervisor.client("solo")
            table = table_factory("jacksonh", 20.0, 10.0)
            client.open_stream(
                "jacksonh", fps=10.0, config=live_config, durable=True
            )
            chunks = frame_aligned_chunks(table, pieces=2)
            client.append("jacksonh", chunks[0])
            before = client.query("jacksonh", 1)
            # the acked append's WAL records are in the mirror already
            assert supervisor.store("solo").collection_names()
            supervisor.kill("solo")
            supervisor.restart("solo", configs={"jacksonh": live_config})
            after = client.query("jacksonh", 1)
            assert_answers_equal(before, after)


class TestDataPlane:
    """The zero-copy wire's own contracts: readonly replies ship no
    mirror delta, scatter rounds coalesce deltas, and the leak check
    (the module fixture asserts ``leaked_segments == []`` on top)."""

    def _loaded_solo(self, supervisor, table_factory, live_config, pieces=2):
        client = supervisor.client("solo")
        table = table_factory("jacksonh", 20.0, 10.0)
        client.open_stream(
            "jacksonh", fps=10.0, config=live_config, durable=True
        )
        return client, frame_aligned_chunks(table, pieces=pieces)

    def test_pure_query_workload_ships_zero_delta_bytes(
        self, table_factory, live_config
    ):
        """The satellite regression: a pure-query workload moves zero
        mirror-delta bytes -- no docs shipped, every command counted as
        a readonly skip, mirror bit-identical before and after."""
        with FabricSupervisor(
            ["solo"], use_shm=True, shm_threshold=1
        ) as supervisor:
            client, chunks = self._loaded_solo(
                supervisor, table_factory, live_config
            )
            for chunk in chunks:
                client.append("jacksonh", chunk)
            mirror = supervisor.store("solo")
            fingerprints = {
                name: mirror.collection(name).fingerprint()
                for name in mirror.collection_names()
            }
            baseline = client.cost_summary()
            queries = 0
            for _ in range(3):
                client.query("jacksonh", 1)
                client.query("jacksonh", 2, kx=2, time_range=(0.0, 10.0))
                client.handle_info("jacksonh")
                queries += 3
            after = client.cost_summary()
            assert (
                after["delta_docs_shipped"] == baseline["delta_docs_shipped"]
            )
            # every query + the two cost_summary reads counted as skips
            assert (
                after["delta_skipped_readonly"]
                >= baseline["delta_skipped_readonly"] + queries
            )
            assert {
                name: mirror.collection(name).fingerprint()
                for name in mirror.collection_names()
            } == fingerprints
        assert supervisor.leaked_segments == []

    def test_readonly_reply_carries_no_delta_envelope(
        self, table_factory, live_config
    ):
        """Protocol-level: the raw Reply of a readonly command has
        ``store_delta is None`` -- zero bytes, not just zero docs."""
        with FabricSupervisor(["solo"], use_shm=False) as supervisor:
            client, chunks = self._loaded_solo(
                supervisor, table_factory, live_config
            )
            client.append("jacksonh", chunks[0])
            worker = supervisor._worker("solo")
            client._submit(
                "query",
                {
                    "stream": "jacksonh",
                    "clazz": 1,
                    "kx": None,
                    "time_range": None,
                },
            )
            reply = client._await_reply(worker)
            worker.pending.popleft()
            assert reply.ok
            assert reply.store_delta is None
            assert reply.store_drops == ()

    def test_deferred_legs_skip_delta_final_leg_ships_it(
        self, table_factory, live_config
    ):
        """A pipelined append round ships exactly one cumulative delta
        per shard: deferred legs' raw replies carry none."""
        with FabricSupervisor(["solo"], use_shm=False) as supervisor:
            client, chunks = self._loaded_solo(
                supervisor, table_factory, live_config, pieces=3
            )
            client.append_submit("jacksonh", chunks[0], defer_delta=True)
            client.append_submit("jacksonh", chunks[1], defer_delta=True)
            client.append_submit("jacksonh", chunks[2])
            worker = supervisor._worker("solo")
            replies = []
            for _ in range(3):
                replies.append(client._await_reply(worker))
                worker.pending.popleft()
            assert all(r.ok for r in replies)
            assert replies[0].store_delta is None
            assert replies[1].store_delta is None
            assert replies[2].store_delta is not None

    def test_append_many_round_recovers_from_coalesced_mirror(
        self, table_factory, live_config
    ):
        """End to end: after a coalesced append_many round, kill +
        restart recovers the full round from the mirror -- the one
        cumulative delta really carried every chunk's durable state."""
        tables = {s: table_factory(s, 20.0, 10.0) for s in FABRIC_STREAMS[:2]}
        with FabricSupervisor(
            ["shard-0", "shard-1"], use_shm=True, shm_threshold=1
        ) as supervisor:
            router = FabricRouter(supervisor.clients())
            feed = []
            for name in tables:
                router.open_stream(
                    name, fps=10.0, config=live_config, durable=True
                )
                feed.extend(
                    (name, chunk)
                    for chunk in frame_aligned_chunks(tables[name], pieces=3)
                )
            router.append_many(feed)
            before = {name: router.query(name, 1) for name in tables}
            for sid in supervisor.shard_ids():
                supervisor.kill(sid)
                supervisor.restart(
                    sid, configs={name: live_config for name in tables}
                )
            for name in tables:
                assert_answers_equal(before[name], router.query(name, 1))
        assert supervisor.leaked_segments == []
