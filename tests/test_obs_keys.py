"""Observability integration: key parity, tracing identity, stitching.

Three contracts the obs layer makes to operators:

* **Key parity** -- every counter/histogram key published by any
  snapshot surface (``ShardNode.counters``, ``ShardClient`` over the
  wire, ``FabricRouter.metrics_snapshot``/``load_report``,
  ``FrontDoor.metrics_snapshot``) is declared in the single kind
  registry, is identical between the in-process and worker-process
  fabrics, and survives a worker restart.
* **Tracing identity** -- enabling tracing (even at 100% sampling) is
  invisible to answers: bit-identical frames and segment metrics in
  both index modes and both fabric modes.
* **Stitching** -- one sampled request's spans link frontdoor ->
  router scatter -> worker dispatch across process boundaries (the
  Perfetto-export acceptance criterion, enforced in-tree).
"""

import pytest

from repro.core.costmodel import LEDGER_COUNTER_KEYS
from repro.fabric import FabricRouter, FabricSupervisor
from repro.fabric.protocol import FAULT_COUNTER_KEYS, WIRE_COUNTER_KEYS
from repro.fabric.shard import JOURNAL_COUNTER_KEYS
from repro.obs.metrics import counter_kinds, kind_registry
from repro.obs.trace import (
    configure_tracing,
    disable_tracing,
    get_sink,
    install_sink,
)
from repro.serve.cache import STAT_KINDS
from repro.serve.frontdoor import (
    ADMISSION_COUNTER_KEYS,
    FrontDoor,
    TenantBudget,
)
from repro.serve.planner import QueryRequest
from repro.serve.service import COUNTER_KINDS
from test_fabric import (
    FABRIC_STREAMS,
    assert_same_slices,
    build_fabric,
    frame_aligned_chunks,
)

#: every registry snapshot has exactly these sections, on every surface
SNAPSHOT_SECTIONS = {"counters", "gauges", "histograms"}

#: the per-shard flat keys FabricRouter.load_report promises the
#: rebalancer (docs/OBSERVABILITY.md)
LOAD_REPORT_KEYS = {
    "streams",
    "live_streams",
    "busy_gpu_seconds",
    "gpu_queue_depth",
    "dispatches",
    "dispatch_p95_s",
    "journal_appends",
    "journal_append_p95_s",
}


@pytest.fixture(scope="module")
def fabric_tables(table_factory):
    return {s: table_factory(s, 30.0, 10.0) for s in FABRIC_STREAMS}


@pytest.fixture(autouse=True)
def _no_trace_leak():
    """Tracing is process-global state: never leak it between tests."""
    yield
    disable_tracing()
    install_sink()


def build_worker_fabric(tables, config, index_mode, num_shards=2):
    supervisor = FabricSupervisor(
        ["shard-%d" % i for i in range(num_shards)]
    )
    try:
        router = FabricRouter(supervisor.clients())
        for name, table in tables.items():
            router.open_stream(
                name, fps=10.0, config=config,
                index_mode=index_mode, durable=True,
            )
            for chunk in frame_aligned_chunks(table):
                router.append(name, chunk)
    except BaseException:
        supervisor.shutdown()
        raise
    return supervisor, router


@pytest.fixture(scope="module")
def worker_fabric(fabric_tables, live_config):
    """One durable 2-worker fabric shared by the read-only parity,
    restart, and stitching tests (restart leaves it fully recovered)."""
    supervisor, router = build_worker_fabric(
        fabric_tables, live_config, "materialized"
    )
    yield supervisor, router
    supervisor.shutdown()


# ---------------------------------------------------------------------------
# key parity
# ---------------------------------------------------------------------------

class TestKeyParity:
    def test_every_published_key_is_registered(self):
        """The canonical enumeration: every counter key any surface
        publishes is declared once in the kind registry, with sum or
        gauge merge semantics."""
        assert counter_kinds() is COUNTER_KINDS  # one live registry
        for key in (
            WIRE_COUNTER_KEYS
            + FAULT_COUNTER_KEYS
            + ADMISSION_COUNTER_KEYS
            + LEDGER_COUNTER_KEYS
            + JOURNAL_COUNTER_KEYS
        ):
            assert key in COUNTER_KINDS, "unregistered counter key %r" % key
        assert set(COUNTER_KINDS.values()) <= {"sum", "gauge"}
        # cache stats live in their own namespace: level/derived kinds
        # must never leak into the counters namespace
        cache_kinds = kind_registry("cache-stats")
        assert set(STAT_KINDS) <= set(cache_kinds)
        assert not set(cache_kinds) & set(COUNTER_KINDS)

    def test_inproc_vs_worker_key_parity(
        self, fabric_tables, live_config, worker_fabric
    ):
        """Both fabric modes publish the same keys from every surface."""
        inproc = build_fabric(fabric_tables, live_config, "materialized")
        _, remote = worker_fabric
        inproc.query_all("car")
        remote.query_all("car")

        for shard_id in inproc.shard_ids():
            node, client = inproc.shard(shard_id), remote.shard(shard_id)
            # the full per-shard counters document, shape and key sets
            nc, cc = node.counters(), client.counters()
            assert set(nc) == set(cc)
            # cost keys match across modes and are all registered
            # (ledger categories appear as they are observed, so the
            # registry is the superset, not an exact match)
            assert set(nc["cost"]) == set(cc["cost"]) <= set(COUNTER_KINDS)
            assert set(nc["cache"]) == set(cc["cache"]) == set(STAT_KINDS)
            assert set(nc["gpu"]) == set(cc["gpu"])
            # the registry snapshot: same sections, same histogram names
            ns, cs = node.metrics_snapshot(), client.metrics_snapshot()
            assert set(ns) == set(cs) == SNAPSHOT_SECTIONS
            assert set(ns["histograms"]) == set(cs["histograms"])

        for router in (inproc, remote):
            snap = router.metrics_snapshot(per_shard=True)
            assert set(snap) == {"total", "per_shard"}
            assert set(snap["per_shard"]) == set(router.shard_ids())
            assert set(snap["total"]) == SNAPSHOT_SECTIONS
            report = router.load_report()
            assert set(report) == set(router.shard_ids())
            for per_shard in report.values():
                assert set(per_shard) == LOAD_REPORT_KEYS
                assert all(
                    isinstance(v, float) for v in per_shard.values()
                )
        # the two modes agree on which histograms the fleet publishes
        assert set(
            inproc.metrics_snapshot()["histograms"]
        ) == set(remote.metrics_snapshot()["histograms"])

    def test_frontdoor_snapshot_keys(self, fabric_tables, live_config):
        inproc = build_fabric(fabric_tables, live_config, "materialized")
        door = FrontDoor(inproc, {"t": TenantBudget(qps=10_000.0)})
        door.query_all("t", "car")
        snap = door.metrics_snapshot()
        assert set(snap) == SNAPSHOT_SECTIONS
        assert "frontdoor.query_s" in snap["histograms"]
        # every admission counter the door publishes is registered
        for key in snap["counters"]:
            if key.startswith("admission-"):
                assert key in COUNTER_KINDS


class TestRestartKeyParity:
    def test_keys_survive_worker_restart(
        self, worker_fabric, fabric_tables, live_config
    ):
        supervisor, router = worker_fabric
        router.query_all("car")  # populate the query-side ledger keys
        client = supervisor.client("shard-0")
        before_cost = set(client.cost_summary())
        before_hists = set(client.metrics_snapshot()["histograms"])
        assert before_cost <= set(COUNTER_KINDS)

        recovered = supervisor.restart(
            "shard-0",
            configs={name: live_config for name in fabric_tables},
        )
        assert recovered  # the shard owned at least one stream
        router.query_all("car")  # replay re-ingested; re-observe queries

        fresh = supervisor.client("shard-0")
        after = fresh.cost_summary()
        assert set(after) == before_cost
        assert after["worker_restarts"] >= 1.0
        snap = fresh.metrics_snapshot()
        assert set(snap) == SNAPSHOT_SECTIONS
        # the fresh worker re-observes histograms as it serves: the
        # post-restart query re-populates the dispatch timings, while
        # journal.append_s waits for the next live append (recovery
        # *reads* the WAL, it never appends) -- so the name set can
        # only shrink to a subset, never grow unregistered names
        assert set(snap["histograms"]) <= before_hists
        assert "scheduler.dispatch_s" in snap["histograms"]
        assert set(router.cost_summary()) <= set(COUNTER_KINDS)


# ---------------------------------------------------------------------------
# tracing identity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("index_mode", ["lazy", "materialized"])
@pytest.mark.parametrize("fabric_mode", ["inproc", "worker"])
class TestTracingIdentity:
    def test_traced_answers_bit_identical(
        self, fabric_tables, live_config, index_mode, fabric_mode
    ):
        """Tracing at 100% sampling cannot alter an answer -- both
        index modes, both fabric modes."""
        if fabric_mode == "inproc":
            supervisor = None
            router = build_fabric(
                fabric_tables, live_config, index_mode, durable=False
            )
        else:
            supervisor, router = build_worker_fabric(
                fabric_tables, live_config, index_mode
            )
        requests = [QueryRequest("car"), QueryRequest("pedestrian")]
        try:
            disable_tracing()
            plain = [router.query_all(c) for c in ("car", "pedestrian")]
            plain += router.query_batch(requests)
            install_sink()
            configure_tracing(1.0)
            traced = [router.query_all(c) for c in ("car", "pedestrian")]
            traced += router.query_batch(requests)
            assert len(get_sink()) > 0  # tracing actually ran
        finally:
            disable_tracing()
            if supervisor is not None:
                supervisor.shutdown()
        for off, on in zip(plain, traced):
            assert_same_slices(off, on)
            assert on.class_id == off.class_id
            assert on.class_name == off.class_name


# ---------------------------------------------------------------------------
# cross-process stitching
# ---------------------------------------------------------------------------

class TestStitchedTrace:
    def test_spans_stitch_frontdoor_to_worker(self, worker_fabric):
        """One sampled request produces a connected span tree from the
        front door through the router scatter to the worker dispatch,
        spanning at least two processes."""
        _, router = worker_fabric
        door = FrontDoor(router, {"t": TenantBudget(qps=10_000.0)})
        install_sink()
        configure_tracing(1.0)
        try:
            door.query_all("t", "car")
        finally:
            disable_tracing()
        spans = get_sink().drain()

        trace_ids = {s["trace_id"] for s in spans}
        assert len(trace_ids) == 1  # one request, one trace
        by_id = {s["span_id"]: s for s in spans}
        by_name = {}
        for s in spans:
            by_name.setdefault(s["name"], []).append(s)
        for required in (
            "frontdoor:query",
            "router:query_batch",
            "router:scatter",
            "worker:query_batch",
        ):
            assert by_name.get(required), "missing span %r" % required

        (frontdoor,) = by_name["frontdoor:query"]
        assert frontdoor["parent_id"] is None
        (batch,) = by_name["router:query_batch"]
        assert batch["parent_id"] == frontdoor["span_id"]
        for scatter in by_name["router:scatter"]:
            assert scatter["parent_id"] == batch["span_id"]
        for worker in by_name["worker:query_batch"]:
            parent = by_id[worker["parent_id"]]
            assert parent["name"] == "router:scatter"
            assert worker["pid"] != parent["pid"]  # crossed the wire
