"""Unit tests for the Ingest-all and Query-all baselines."""

import numpy as np
import pytest

from repro.baselines.ingest_all import IngestAllBaseline
from repro.baselines.query_all import QueryAllBaseline
from repro.cnn.zoo import cheap_cnn, resnet152
from repro.video.synthesis import generate_observations


@pytest.fixture(scope="module")
def table():
    return generate_observations("auburn_c", 60.0, 30.0)


@pytest.fixture(scope="module")
def gt():
    return resnet152()


class TestIngestAll:
    def test_requires_gt(self):
        with pytest.raises(ValueError):
            IngestAllBaseline(cheap_cnn(1))

    def test_ingest_costs_gt_on_everything(self, table, gt):
        baseline = IngestAllBaseline(gt)
        result = baseline.ingest(table)
        assert result.inferences == len(table)
        assert result.ingest_gpu_seconds == pytest.approx(gt.cost_seconds(len(table)))

    def test_queries_are_exact_and_free(self, table, gt):
        baseline = IngestAllBaseline(gt)
        baseline.ingest(table)
        cls = int(table.dominant_classes()[0])
        metrics = baseline.query(table.stream, cls)
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0
        assert baseline.query_latency_seconds() == 0.0

    def test_absent_class(self, table, gt):
        baseline = IngestAllBaseline(gt)
        baseline.ingest(table)
        absent = next(c for c in range(1000) if c not in set(table.present_classes()))
        metrics = baseline.query(table.stream, absent)
        assert metrics.returned_segments == 0


class TestQueryAll:
    def test_requires_gt(self):
        with pytest.raises(ValueError):
            QueryAllBaseline(cheap_cnn(1))

    def test_ingest_is_free(self, table, gt):
        baseline = QueryAllBaseline(gt)
        baseline.ingest(table)
        assert baseline.ingest_gpu_seconds() == 0.0

    def test_query_costs_gt_on_interval(self, table, gt):
        baseline = QueryAllBaseline(gt)
        baseline.ingest(table)
        cls = int(table.dominant_classes()[0])
        answer = baseline.query(table.stream, cls)
        assert answer.gt_inferences == len(table)
        assert answer.gpu_seconds == pytest.approx(gt.cost_seconds(len(table)))
        assert answer.metrics.precision == 1.0
        assert answer.metrics.recall == 1.0

    def test_time_range_cuts_cost(self, table, gt):
        baseline = QueryAllBaseline(gt)
        baseline.ingest(table)
        cls = int(table.dominant_classes()[0])
        full = baseline.query(table.stream, cls)
        half = baseline.query(table.stream, cls, time_range=(0.0, 30.0))
        assert half.gt_inferences < full.gt_inferences

    def test_latency_parallelizes(self, table, gt):
        baseline = QueryAllBaseline(gt)
        baseline.ingest(table)
        answer = baseline.query(table.stream, int(table.dominant_classes()[0]))
        assert answer.latency_seconds(10) == pytest.approx(answer.gpu_seconds / 10)
        with pytest.raises(ValueError):
            answer.latency_seconds(0)
