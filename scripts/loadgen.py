#!/usr/bin/env python
"""Closed-loop multi-tenant load generator for the front door (PR 9).

Drives mixed open/append/query traffic from N tenants through a
:class:`~repro.serve.frontdoor.FrontDoor` at per-tenant target rates,
against either fabric mode, and reports achieved QPS + p50/p95/p99
wall latency per tenant against each tenant's *declared* SLO:

    PYTHONPATH=src python scripts/loadgen.py --mode inproc --duration 4
    PYTHONPATH=src python scripts/loadgen.py --mode worker --duration 6
    PYTHONPATH=src python scripts/loadgen.py --check   # CI smoke gate

Each tenant is a closed loop: it issues its next operation no earlier
than its pacing interval (1 / target QPS) after the previous one
*completed*, so a slow or throttled service lowers achieved QPS instead
of piling up an unbounded backlog -- the standard closed-loop load
model.  Rejections (:class:`AdmissionRejected`) count against achieved
QPS and are tallied by reason; only admitted operations contribute
latency samples.

``--check`` exits non-zero unless the skewed two-tenant preset shows
the declared QoS behaviour: the high-priority interactive tenant's p99
meets its SLO while the over-driven bulk tenant is throttled.  The CI
``loadgen-smoke`` job runs exactly that.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.cnn.zoo import cheap_cnn  # noqa: E402
from repro.core.config import FocusConfig  # noqa: E402
from repro.obs.metrics import LatencyHistogram  # noqa: E402
from repro.obs.trace import (  # noqa: E402
    DEFAULT_SAMPLE_RATE,
    configure_tracing,
    disable_tracing,
    export_chrome_trace,
    get_sink,
    install_sink,
)
from repro.serve.frontdoor import (  # noqa: E402
    AdmissionRejected,
    FrontDoor,
    TenantBudget,
)
from repro.video.synthesis import generate_observations  # noqa: E402

STREAMS = ("auburn_c", "jacksonh")
STREAM_FPS = 30.0
SYNTH_DURATION_S = 600.0
CLUSTER_THRESHOLD = 0.4
INDEX_K = 10
CHUNK_ROWS = 512


def chunk_feed(table) -> List[Any]:
    """Frame-aligned sequential chunks: live pushes must preserve
    stream time order, so splits never land mid-frame."""
    n = len(table)
    frames = table.frame_idx
    bounds = [0]
    while bounds[-1] < n:
        stop = min(bounds[-1] + CHUNK_ROWS, n)
        while stop < n and frames[stop] == frames[stop - 1]:
            stop += 1
        bounds.append(stop)
    return [table.slice(a, b) for a, b in zip(bounds, bounds[1:])]


@dataclass
class TenantSpec:
    """One load-generating tenant: its declared budget plus the offered
    load (target ops/s and the query/append mix) it tries to push."""

    name: str
    budget: TenantBudget
    target_qps: float
    #: probability an op is a query (the rest are appends)
    query_weight: float = 1.0
    classes: Sequence[int] = (1, 2)


@dataclass
class _TenantLoop:
    spec: TenantSpec
    next_fire: float
    #: admitted-op wall latency -- the same fixed log-bucket histogram
    #: the registry and bench use, so quantiles come from one code path
    #: and memory stays bounded however long the run
    hist: LatencyHistogram = field(default_factory=LatencyHistogram)
    admitted: int = 0
    rejected: Dict[str, int] = field(
        default_factory=lambda: {"rate": 0, "inflight": 0, "backpressure": 0}
    )
    rng: Any = None


def default_tenants() -> List[TenantSpec]:
    """The skewed two-tenant preset: an interactive tenant comfortably
    inside its budget vs a bulk tenant offering ~4x its declared rate
    (so the door must throttle it)."""
    return [
        TenantSpec(
            name="interactive",
            budget=TenantBudget(
                qps=50.0, max_inflight=4, priority=0, slo_p99_ms=750.0
            ),
            target_qps=12.0,
            query_weight=1.0,
            classes=(1, 2),
        ),
        TenantSpec(
            name="bulk",
            budget=TenantBudget(
                qps=8.0, burst=4.0, max_inflight=2, priority=3,
                slo_p99_ms=None,
            ),
            target_qps=35.0,
            query_weight=0.6,
            classes=(1, 2, 3),
        ),
    ]


def build_service(mode: str, config: FocusConfig, feeds) -> Tuple[Any, Any]:
    """(service, supervisor-or-None): a fleet with STREAMS pre-opened
    and a seed chunk ingested, in-process or worker-process shards.
    ``feeds`` is the per-stream chunk queue; the seed chunk is popped
    off the front."""
    from repro.fabric import FabricRouter, FabricSupervisor, ShardNode

    shard_ids = ["shard-0", "shard-1"]
    supervisor = None
    if mode == "worker":
        supervisor = FabricSupervisor(shard_ids)
        shards = supervisor.clients()
    else:
        shards = [ShardNode(sid) for sid in shard_ids]
    router = FabricRouter(shards)
    for name in STREAMS:
        router.open_stream(
            name,
            fps=STREAM_FPS,
            config=config,
            index_mode="materialized",
            durable=False,
        )
        router.append(name, feeds[name].pop(0))
    return router, supervisor


def _percentile_ms(hist: LatencyHistogram, q: float) -> float:
    """A histogram quantile in milliseconds (NaN when empty)."""
    return hist.percentile(q) * 1e3


def run_loadgen(
    mode: str = "inproc",
    duration_s: float = 4.0,
    tenants: Optional[List[TenantSpec]] = None,
    seed: int = 0,
    trace_out: Optional[str] = None,
    trace_sample_rate: float = DEFAULT_SAMPLE_RATE,
) -> Dict[str, Any]:
    """Run the closed loop; returns the per-tenant SLO report.

    Report fields per tenant (see ``docs/QOS.md``): ``priority``,
    ``target_qps`` (offered), ``qps_budget`` (declared), ``achieved_qps``
    (admitted ops/s), ``admitted``, ``rejected`` (by reason),
    ``p50_ms``/``p95_ms``/``p99_ms`` (admitted-op wall latency),
    ``slo_p99_ms`` (declared target or None) and ``slo_ok``.

    ``trace_out`` enables request tracing at ``trace_sample_rate`` for
    the run and exports the collected spans (frontdoor -> router
    scatter -> worker dispatch, stitched across processes) as a
    Chrome-trace-event JSON file Perfetto can open.
    """
    tenants = tenants if tenants is not None else default_tenants()
    if trace_out:
        install_sink()  # a fresh sink: only this run's spans export
        configure_tracing(trace_sample_rate)
    config = FocusConfig(
        model=cheap_cnn(1), k=INDEX_K, cluster_threshold=CLUSTER_THRESHOLD
    )
    feeds = {
        name: chunk_feed(
            generate_observations(name, SYNTH_DURATION_S, STREAM_FPS)
        )
        for name in STREAMS
    }
    service, supervisor = build_service(mode, config, feeds)
    door = FrontDoor(
        service, {spec.name: spec.budget for spec in tenants}
    )
    try:
        t0 = time.monotonic()
        loops = [
            _TenantLoop(
                spec=spec,
                next_fire=t0,
                rng=np.random.default_rng(seed + i),
            )
            for i, spec in enumerate(tenants)
        ]
        deadline = t0 + duration_s
        while True:
            now = time.monotonic()
            if now >= deadline:
                break
            due = [lp for lp in loops if lp.next_fire <= now]
            if not due:
                time.sleep(
                    min(
                        min(lp.next_fire for lp in loops) - now,
                        deadline - now,
                    )
                )
                continue
            # earliest-scheduled first; ties broken by declared priority
            loop = min(
                due, key=lambda lp: (lp.next_fire, lp.spec.budget.priority)
            )
            stream = STREAMS[loop.rng.integers(0, len(STREAMS))]
            # an append when the stream's feed ran dry becomes a query
            is_query = (
                loop.rng.random() < loop.spec.query_weight
                or not feeds[stream]
            )
            started = time.monotonic()
            try:
                if is_query:
                    clazz = int(
                        loop.spec.classes[
                            loop.rng.integers(0, len(loop.spec.classes))
                        ]
                    )
                    door.query_all(loop.spec.name, clazz)
                else:
                    # chunks must land in stream time order: pop only
                    # once admitted (a rejected append re-offers it)
                    door.append(loop.spec.name, stream, feeds[stream][0])
                    feeds[stream].pop(0)
                loop.admitted += 1
                loop.hist.observe(time.monotonic() - started)
            except AdmissionRejected as exc:
                loop.rejected[exc.reason] += 1
            # closed loop: pace from completion, never early
            loop.next_fire = max(
                loop.next_fire + 1.0 / loop.spec.target_qps, time.monotonic()
            )
        elapsed = time.monotonic() - t0
    finally:
        if supervisor is not None:
            supervisor.shutdown()
        if trace_out:
            disable_tracing()

    report: Dict[str, Any] = {
        "mode": mode,
        "duration_s": round(elapsed, 3),
        "streams": list(STREAMS),
        "tenants": {},
    }
    if trace_out:
        report["trace_events"] = export_chrome_trace(
            get_sink().drain(), trace_out
        )
        report["trace_out"] = trace_out
    for loop in loops:
        spec = loop.spec
        p99 = _percentile_ms(loop.hist, 99)
        slo = spec.budget.slo_p99_ms
        report["tenants"][spec.name] = {
            "priority": spec.budget.priority,
            "target_qps": spec.target_qps,
            "qps_budget": spec.budget.qps,
            "achieved_qps": round(loop.admitted / elapsed, 2),
            "admitted": loop.admitted,
            "rejected": dict(loop.rejected),
            "p50_ms": round(_percentile_ms(loop.hist, 50), 2),
            "p95_ms": round(_percentile_ms(loop.hist, 95), 2),
            "p99_ms": round(p99, 2),
            "slo_p99_ms": slo,
            "slo_ok": bool(p99 <= slo) if slo is not None else None,
        }
    return report


def check_report(report: Dict[str, Any]) -> List[str]:
    """The smoke gate's assertions over the skewed preset; returns the
    list of violations (empty means the QoS story held)."""
    problems: List[str] = []
    interactive = report["tenants"].get("interactive")
    bulk = report["tenants"].get("bulk")
    if interactive is None or bulk is None:
        return ["report is missing the interactive/bulk preset tenants"]
    if interactive["admitted"] == 0:
        problems.append("interactive tenant had no admitted ops")
    if interactive["slo_ok"] is False:
        problems.append(
            "interactive p99 %.1fms blew its %.1fms SLO"
            % (interactive["p99_ms"], interactive["slo_p99_ms"])
        )
    total_rejected = sum(bulk["rejected"].values())
    if total_rejected == 0:
        problems.append(
            "bulk tenant offered %.1f qps over an %.1f qps budget but was "
            "never throttled" % (bulk["target_qps"], bulk["qps_budget"])
        )
    if bulk["achieved_qps"] > bulk["qps_budget"] * 1.5:
        problems.append(
            "bulk tenant achieved %.1f qps, well over its %.1f qps budget"
            % (bulk["achieved_qps"], bulk["qps_budget"])
        )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mode", choices=("inproc", "worker"), default="inproc",
        help="in-process ShardNodes or worker-process shards",
    )
    parser.add_argument("--duration", type=float, default=4.0,
                        help="wall seconds of load per run")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the skewed preset's QoS story holds "
             "(high-priority SLO met, bulk tenant throttled)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="enable request tracing for the run and export the spans "
             "as Chrome-trace-event JSON (open in ui.perfetto.dev)",
    )
    parser.add_argument(
        "--trace-sample-rate", type=float, default=DEFAULT_SAMPLE_RATE,
        help="sampling rate when --trace-out is set (default %(default)s; "
             "the first eligible request is always sampled)",
    )
    args = parser.parse_args(argv)

    report = run_loadgen(
        mode=args.mode, duration_s=args.duration, seed=args.seed,
        trace_out=args.trace_out, trace_sample_rate=args.trace_sample_rate,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print("[loadgen] mode=%s elapsed=%.1fs" % (args.mode, report["duration_s"]))
        for name, t in sorted(report["tenants"].items()):
            print(
                "  %-12s p%d  offered %5.1f/s  achieved %5.1f/s  "
                "p50 %7.1fms  p99 %7.1fms  slo %s  rejected %s"
                % (
                    name, t["priority"], t["target_qps"], t["achieved_qps"],
                    t["p50_ms"], t["p99_ms"],
                    "ok" if t["slo_ok"] else ("n/a" if t["slo_ok"] is None else "MISS"),
                    sum(t["rejected"].values()),
                )
            )
    if args.trace_out:
        print(
            "[loadgen] exported %d trace events to %s"
            % (report.get("trace_events", 0), args.trace_out)
        )
    if args.check:
        problems = check_report(report)
        for problem in problems:
            print("[loadgen] CHECK FAILED: %s" % problem)
        if problems:
            return 1
        print("[loadgen] check ok: SLO held for interactive, bulk throttled")
    return 0


if __name__ == "__main__":
    sys.exit(main())
