#!/usr/bin/env python
"""Deterministic perf harness: ingest/query/checkpoint micro+meso benchmarks.

Measures the wall-clock hot paths the paper's economics depend on
(cheap ingest, bounded query latency) over a fixed synthetic window, and
writes the numbers to a ``BENCH_*.json`` file at the repo root -- the
perf trajectory of the repo, one point per PR.

    PYTHONPATH=src python scripts/bench.py              # full window (~100k rows)
    PYTHONPATH=src python scripts/bench.py --quick      # CI-sized window (~20k rows)
    PYTHONPATH=src python scripts/bench.py --compare BENCH_PR3.json bench_new.json

``--compare`` diffs two BENCH files and exits non-zero when any shared
benchmark regressed by more than ``--tolerance`` (default 10%); pass
``--warn-only`` to report without failing (noisy CI runners).

Benchmarks (per scale):
    ingest_oneshot        end-to-end IngestPipeline.run rows/s (lazy index)
    ingest_live           end-to-end StreamIngestor.push rows/s (materialized
                          index, fixed-size chunks -- the live path)
    ingest_live_journaled same, with a write-ahead ingest journal attached:
                          the durability tax on the live hot path.
                          ``--compare`` checks it against the *baseline's*
                          plain ingest_live when the baseline predates the
                          journal (the journal-overhead gate)
    cluster_kernel_batch  IncrementalClusterer.add rows/s, vectorized kernel
    cluster_kernel_scalar IncrementalClusterer.add rows/s, row-at-a-time
                          reference kernel (the pre-PR3 hot path)
    query_p50_ms /        QueryEngine.query wall latency percentiles over
    query_p95_ms          the window's dominant classes
    checkpoint_s          first incremental docstore checkpoint of the live
                          session's index (writes every cluster document)
    recovery_s            StreamIngestor.recover wall time: committed durable
                          checkpoint at the window's midpoint + journal
                          replay of the second half
    fabric_ingest_{1,4}shard      the fabric_scatter_gather scenario: live
                          chunked ingest of a 4-camera fleet routed through a
                          FabricRouter over 1 vs 4 ShardNodes (rows/s; the
                          delta is the routing/placement tax and the win from
                          per-shard GPU clusters)
    fabric_query_p{50,95}_{1,4}shard  router.query_all wall latency
                          percentiles over the fleet's dominant classes,
                          scatter-gathered across the same 1 vs 4 shards
    fabric_parallel_ingest_{1,4}worker  the fabric_parallel scenario: the
                          same 4-camera fleet, but each shard is its own
                          *worker process* (FabricSupervisor) and ingest
                          is pipelined through the router's append_many
                          (rows/s).  Each result records the runner's
                          usable ``cpu_count``: on a single-core box the
                          4-worker number measures pure protocol overhead,
                          not parallelism -- read the speedup accordingly
    fabric_parallel_query_p50_{1,4}worker  router.query_all wall latency
                          (p50) with scatter legs pipelined across the
                          worker processes
    fabric_parallel_speedup_4w  the 4-worker / 1-worker ingest rows/s
                          ratio (dimensionless; >1 means real scaling,
                          ~1 expected when cpu_count == 1)
    mttr_failover_s       the mttr_failover scenario: a 2-worker fleet
                          with half the feed durably ingested, one
                          worker killed cold -- wall time from the kill
                          to the first healthy (router-retried) query
                          answer: detection + respawn + WAL replay +
                          the query
    failover_ingest /     mixed-load rows/s over a window that starts at
    failover_ingest_baseline  the kill (healing query + the feed's second
                          half) vs the same window with no kill: the
                          failover's throughput dip
    frontdoor_qos_{tenant}_qps  the frontdoor_qos scenario: the loadgen
                          skewed two-tenant preset (scripts/loadgen.py)
                          driven through the FrontDoor for a few wall
                          seconds -- per-tenant *admitted* ops/s for the
                          in-budget interactive tenant vs the over-
                          driven bulk tenant (whose number should sit
                          near its declared budget, not its offered
                          rate)
    frontdoor_qos_{tenant}_p{50,99}_ms  the same run's per-tenant
                          admitted-op wall-latency percentiles; each
                          result records the tenant's declared
                          ``slo_p99_ms`` (None when best-effort)
    obs_ingest_{plain,traced}  the observability_overhead scenario:
                          live fleet ingest through a 1-shard in-process
                          router with tracing off vs tracing sampling at
                          the default 1% rate (rows/s), measured
                          back-to-back inside each repeat so host drift
                          cancels out of the ratio
    obs_query_p95_{plain,traced}_ms  router.query_all wall p95 for the
                          same two configurations (the traced query path
                          stamps walk-in trace contexts, opens scatter
                          spans, and observes latency histograms)
    obs_overhead_{ingest,query}  the dimensionless traced/plain ratios:
                          1.0 means observability is free, lower is the
                          overhead; the CI smoke warns below 0.98
                          (scripts/check_obs_overhead.py)

Run a subset of sections with ``--sections`` (comma-separated; see
``SECTION_ORDER``), and override the worker counts of the
fabric_parallel scenario with ``--fabric-workers 1,2``.

All inputs are deterministic (hash-seeded synthesis), so run-to-run
variance is timer noise only; every section runs ``--repeats`` times and
keeps the best.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.cnn.zoo import cheap_cnn, resnet152  # noqa: E402
from repro.core.clustering import IncrementalClusterer  # noqa: E402
from repro.core.config import FocusConfig  # noqa: E402
from repro.core.ingest import IngestPipeline, simulate_pixel_diff  # noqa: E402
from repro.core.query import QueryEngine  # noqa: E402
from repro.core.streaming import StreamIngestor  # noqa: E402
from repro.fabric.protocol import WIRE_COUNTER_KEYS  # noqa: E402
from repro.storage.docstore import DocumentStore  # noqa: E402
from repro.storage.journal import IngestJournal  # noqa: E402
from repro.video.synthesis import generate_observations  # noqa: E402

SCHEMA_VERSION = 1

#: compare-mode fallbacks: when the *baseline* predates a benchmark, the
#: new number is checked against this older baseline key instead (the
#: journal-overhead gate: journaled live ingest must stay within the
#: tolerance of the pre-journal live path)
COMPARE_ALIASES = {
    "ingest_live_journaled": "ingest_live",
    # the worker-process tax gate: 1-worker parallel ingest (all protocol
    # overhead, no parallelism) is checked against in-process 1-shard
    # routing when the baseline predates the worker fabric
    "fabric_parallel_ingest_1worker": "fabric_ingest_1shard",
}

#: benchmark workload per scale: (stream, synth duration, row cap)
SCALES = {
    "full": ("auburn_c", 3000.0, 100_000),
    "quick": ("auburn_c", 650.0, 20_000),
}

STREAM_FPS = 30.0
CLUSTER_THRESHOLD = 0.4
INDEX_K = 10
LIVE_CHUNK_ROWS = 2048
QUERY_CLASSES = 8
QUERY_REPEATS = 25

#: the fabric_scatter_gather fleet: 4 cameras, routed over 1 vs 4 shards
FABRIC_STREAMS = ("auburn_c", "jacksonh", "lausanne", "oxford")
FABRIC_SHARD_COUNTS = (1, 4)
#: per-stream synthesis window by scale (the 4-stream total roughly
#: matches the single-stream window of the other sections)
FABRIC_DURATIONS = {"full": 750.0, "quick": 160.0}
FABRIC_QUERY_REPEATS = 10
#: the fabric_parallel scenario: same fleet, worker *processes* per shard
FABRIC_WORKER_COUNTS = (1, 4)

#: runnable sections for --sections (canonical order)
SECTION_ORDER = (
    "ingest_oneshot",
    "ingest_live",
    "ingest_live_journaled",
    "cluster_kernels",
    "query",
    "checkpoint",
    "recovery",
    "fabric",
    "fabric_parallel",
    "mttr_failover",
    "frontdoor_qos",
    "observability_overhead",
)

#: metric direction: True when larger values are better ("x" is the
#: dimensionless speedup ratio of the fabric_parallel scenario)
HIGHER_IS_BETTER = {
    "rows_per_s": True, "ms": False, "s": False, "x": True, "qps": True,
}


def _usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1

_CLUSTERER_HAS_KERNEL = (
    "kernel" in inspect.signature(IncrementalClusterer.__init__).parameters
)


def _window(scale: str):
    stream, duration_s, row_cap = SCALES[scale]
    table = generate_observations(stream, duration_s, STREAM_FPS)
    if len(table) > row_cap:
        table = table.select(np.arange(len(table)) < row_cap)
    return table


def _config():
    return FocusConfig(
        model=cheap_cnn(1), k=INDEX_K, cluster_threshold=CLUSTER_THRESHOLD
    )


def _best(fn, repeats: int):
    """(best wall seconds, last result) over ``repeats`` timed runs.

    Two warm-up rounds first: model/extractor caches plus the
    process-level allocator steady state settle before anything is
    timed.  The last timed run's return value is handed back so
    callers never pay an extra untimed ingest just to get a result.
    """
    fn()
    fn()
    took = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        took.append(time.perf_counter() - t0)
    return min(took), result


class Runner:
    def __init__(self, scale: str, repeats: int):
        self.scale = scale
        self.repeats = repeats
        self.results: Dict[str, Dict] = {}
        self.table = _window(scale)
        self.config = _config()
        self._fingerprint = {
            "stream": self.table.stream,
            "rows": len(self.table),
            "threshold": CLUSTER_THRESHOLD,
            "k": INDEX_K,
            "model": self.config.model.name,
            "live_chunk_rows": LIVE_CHUNK_ROWS,
        }

    def record(
        self, name: str, metric: str, value: float, wire=None, **extra
    ) -> None:
        key = "%s@%s" % (name, self.scale)
        entry = {
            "metric": metric,
            "value": round(float(value), 4),
            "config": dict(self._fingerprint, **extra),
        }
        if wire is not None:
            # wire-byte totals ride outside "config" on purpose: the
            # --compare gate skips entries whose config changed, and
            # traffic totals are an observation, not a knob
            entry["wire"] = {k: round(float(v), 1) for k, v in wire.items()}
        self.results[key] = entry
        print("  %-28s %12.1f %s" % (key, value, metric))

    # -- sections ----------------------------------------------------------
    def bench_ingest_oneshot(self):
        n = len(self.table)
        pipeline = IngestPipeline(self.config, index_mode="lazy")
        took, result = _best(lambda: pipeline.run(self.table), self.repeats)
        self.record("ingest_oneshot", "rows_per_s", n / took, index_mode="lazy")
        return result

    def _live_chunk_bounds(self, table=None):
        # chunk boundaries aligned to frames: rows are frame-ordered, so
        # only frame-aligned splits preserve stream time order
        table = self.table if table is None else table
        n = len(table)
        frames = table.frame_idx
        bounds = [0]
        while bounds[-1] < n:
            stop = min(bounds[-1] + LIVE_CHUNK_ROWS, n)
            while stop < n and frames[stop] == frames[stop - 1]:
                stop += 1
            bounds.append(stop)
        return bounds

    def bench_ingest_live(self):
        n = len(self.table)
        bounds = self._live_chunk_bounds()

        def run():
            ingestor = StreamIngestor(
                self.config,
                self.table.stream,
                fps=STREAM_FPS,
                index_mode="materialized",
            )
            for start, stop in zip(bounds, bounds[1:]):
                ingestor.push(self.table.slice(start, stop))
            return ingestor

        took, ingestor = _best(run, self.repeats)
        self.record("ingest_live", "rows_per_s", n / took, index_mode="materialized")
        return ingestor

    def bench_ingest_live_journaled(self):
        """The live path with the write-ahead journal attached: every
        chunk is checksummed and journaled before it is applied.  The
        delta versus ``ingest_live`` is the durability tax."""
        n = len(self.table)
        bounds = self._live_chunk_bounds()

        def run():
            store = DocumentStore()
            ingestor = StreamIngestor(
                self.config,
                self.table.stream,
                fps=STREAM_FPS,
                index_mode="materialized",
                journal=IngestJournal(store, self.table.stream),
            )
            for start, stop in zip(bounds, bounds[1:]):
                ingestor.push(self.table.slice(start, stop))
            return ingestor

        took, _ = _best(run, self.repeats)
        self.record(
            "ingest_live_journaled", "rows_per_s", n / took,
            index_mode="materialized",
        )

    def bench_recovery(self):
        """Crash-recovery wall time: a committed mid-window durable
        checkpoint plus journal replay of everything after it."""
        bounds = self._live_chunk_bounds()
        mid = len(bounds) // 2

        def build_crashed_store():
            crash_store = DocumentStore()
            session = StreamIngestor(
                self.config,
                self.table.stream,
                fps=STREAM_FPS,
                index_mode="materialized",
                journal=IngestJournal(crash_store, self.table.stream),
            )
            for i, (start, stop) in enumerate(zip(bounds, bounds[1:])):
                session.push(self.table.slice(start, stop))
                if i == mid:
                    session.checkpoint(crash_store)
            return crash_store

        crash_store = build_crashed_store()
        took, recovered = _best(
            lambda: StreamIngestor.recover(crash_store, self.table.stream),
            self.repeats,
        )
        assert recovered.num_rows == len(self.table)
        self.record("recovery_s", "s", took,
                    clusters=int(recovered.index.num_clusters))

    def bench_cluster_kernels(self):
        model = self.config.model
        feats = model.feature_extractor().extract(self.table).astype(np.float64)
        suppressed = simulate_pixel_diff(self.table)
        pre = np.where(suppressed, -2, -1).astype(np.int64)
        n = len(self.table)
        kernels = ["batch", "scalar"] if _CLUSTERER_HAS_KERNEL else ["scalar"]
        for kernel in kernels:
            def run(kernel=kernel):
                kw = {"kernel": kernel} if _CLUSTERER_HAS_KERNEL else {}
                clusterer = IncrementalClusterer(
                    threshold=CLUSTER_THRESHOLD, dim=model.feature_dim, **kw
                )
                for start in range(0, n, 16384):
                    stop = min(start + 16384, n)
                    clusterer.add(
                        feats[start:stop],
                        self.table.track_id[start:stop],
                        pre[start:stop],
                    )

            took, _ = _best(run, self.repeats)
            self.record("cluster_kernel_%s" % kernel, "rows_per_s", n / took)

    def bench_query(self, result):
        engine = QueryEngine(
            index=result.index,
            table=result.table,
            ingest_model=self.config.model,
            gt_model=resnet152(),
        )
        classes = self.table.dominant_classes(0.95)[:QUERY_CLASSES]
        lat = []
        for _ in range(QUERY_REPEATS):
            for cid in classes:
                t0 = time.perf_counter()
                engine.query(int(cid))
                lat.append(time.perf_counter() - t0)
        lat_ms = np.asarray(lat) * 1e3
        self.record("query_p50", "ms", float(np.percentile(lat_ms, 50)),
                    classes=len(classes))
        self.record("query_p95", "ms", float(np.percentile(lat_ms, 95)),
                    classes=len(classes))

    def bench_checkpoint(self, ingestor):
        store = DocumentStore()
        t0 = time.perf_counter()
        ingestor.checkpoint(store)
        took = time.perf_counter() - t0
        self.record("checkpoint_s", "s", took,
                    clusters=int(ingestor.index.num_clusters))

    def _fabric_fleet(self):
        """The 4-camera fleet workload shared by both fabric scenarios:
        (round-robin chunk feed, query classes, total rows)."""
        duration = FABRIC_DURATIONS[self.scale]
        row_cap = SCALES[self.scale][2] // len(FABRIC_STREAMS)
        tables = {}
        for name in FABRIC_STREAMS:
            table = generate_observations(name, duration, STREAM_FPS)
            if len(table) > row_cap:
                table = table.select(np.arange(len(table)) < row_cap)
            tables[name] = table
        total_rows = sum(len(t) for t in tables.values())

        def stream_chunks(table):
            bounds = self._live_chunk_bounds(table)
            return [table.slice(a, b) for a, b in zip(bounds, bounds[1:])]

        # round-robin across cameras: the fleet ingests concurrently
        per_stream = {name: stream_chunks(t) for name, t in tables.items()}
        feed = []
        for i in range(max(len(c) for c in per_stream.values())):
            for name in FABRIC_STREAMS:
                if i < len(per_stream[name]):
                    feed.append((name, per_stream[name][i]))
        classes = tables[FABRIC_STREAMS[0]].dominant_classes(0.95)[:QUERY_CLASSES]
        return feed, classes, total_rows

    def bench_fabric_scatter_gather(self):
        """Live fleet ingest + cross-stream queries through the sharded
        fabric, 1 shard vs 4: the delta between the two shard counts is
        the scatter-gather layer's scaling behaviour (placement lookups
        and answer merging vs per-shard GPU clusters and caches)."""
        from repro.fabric import FabricRouter, ShardNode

        feed, classes, total_rows = self._fabric_fleet()

        for num_shards in FABRIC_SHARD_COUNTS:
            def run(num_shards=num_shards):
                router = FabricRouter(
                    [ShardNode("shard-%d" % i) for i in range(num_shards)]
                )
                for name in FABRIC_STREAMS:
                    router.open_stream(
                        name,
                        fps=STREAM_FPS,
                        config=self.config,
                        index_mode="materialized",
                        durable=False,
                    )
                for name, chunk in feed:
                    router.append(name, chunk)
                return router

            suffix = "%dshard" % num_shards
            took, router = _best(run, self.repeats)
            self.record(
                "fabric_ingest_%s" % suffix, "rows_per_s", total_rows / took,
                streams=len(FABRIC_STREAMS), shards=num_shards,
            )
            lat = []
            for _ in range(FABRIC_QUERY_REPEATS):
                for cid in classes:
                    t0 = time.perf_counter()
                    router.query_all(int(cid))
                    lat.append(time.perf_counter() - t0)
            lat_ms = np.asarray(lat) * 1e3
            self.record(
                "fabric_query_p50_%s" % suffix, "ms",
                float(np.percentile(lat_ms, 50)),
                streams=len(FABRIC_STREAMS), shards=num_shards,
                classes=len(classes),
            )
            self.record(
                "fabric_query_p95_%s" % suffix, "ms",
                float(np.percentile(lat_ms, 95)),
                streams=len(FABRIC_STREAMS), shards=num_shards,
                classes=len(classes),
            )

    def bench_fabric_parallel(self, worker_counts=None):
        """True parallel fleet ingest: each shard its own worker process
        behind the wire protocol, chunks pipelined via ``append_many``.

        The timed region is open-to-last-ack ingest only -- worker spawn
        and teardown happen outside the clock.  Every result records the
        runner's usable ``cpu_count``, because the 4-worker number only
        demonstrates *parallelism* when there are cores to run on; on a
        1-CPU runner it measures the wire protocol's round-trip tax and
        the speedup ratio is expected to sit near 1.0.
        """
        from repro.fabric import FabricRouter, FabricSupervisor, ShardNode

        counts = tuple(worker_counts) if worker_counts else FABRIC_WORKER_COUNTS
        feed, classes, total_rows = self._fabric_fleet()
        cpu_count = _usable_cpus()
        rates: Dict[int, float] = {}

        def ingest_round(router):
            for name in FABRIC_STREAMS:
                router.open_stream(
                    name,
                    fps=STREAM_FPS,
                    config=self.config,
                    index_mode="materialized",
                    durable=False,
                )
            t0 = time.perf_counter()
            router.append_many(feed)
            return time.perf_counter() - t0

        for num_workers in counts:
            shard_ids = ["shard-%d" % i for i in range(num_workers)]
            took_best = None
            # adjacent in-process reference for the protocol-tax ratio:
            # measured inside the same repeat loop as the worker run, so
            # host drift between bench sections cancels out of the ratio
            ref_best = None
            keep = None  # (supervisor, router) of the last repeat
            for rep in range(1 + self.repeats):  # 1 warm-up round
                supervisor = FabricSupervisor(shard_ids)
                try:
                    router = FabricRouter(supervisor.clients())
                    took = ingest_round(router)
                except BaseException:
                    supervisor.shutdown()
                    raise
                if num_workers == 1:
                    ref_took = ingest_round(FabricRouter([ShardNode("shard-0")]))
                    if rep > 0:
                        ref_best = (
                            ref_took if ref_best is None
                            else min(ref_best, ref_took)
                        )
                if rep > 0:
                    took_best = took if took_best is None else min(took_best, took)
                if rep == self.repeats:
                    keep = (supervisor, router)
                else:
                    supervisor.shutdown()

            suffix = "%dworker" % num_workers
            rates[num_workers] = total_rows / took_best
            supervisor, router = keep
            fleet_costs = router.cost_summary()
            wire = {k: fleet_costs.get(k, 0.0) for k in WIRE_COUNTER_KEYS}
            self.record(
                "fabric_parallel_ingest_%s" % suffix, "rows_per_s",
                rates[num_workers], wire=wire,
                streams=len(FABRIC_STREAMS), workers=num_workers,
                cpu_count=cpu_count,
            )
            if num_workers == 1 and ref_best is not None:
                # the wire's whole overhead vs the same single shard
                # in-process, measured back-to-back within each repeat:
                # 1.0 means the data plane is free, lower is the
                # protocol tax
                self.record(
                    "fabric_protocol_tax", "x",
                    ref_best / took_best,
                    workers=1, cpu_count=cpu_count,
                )
            try:
                lat = []
                for _ in range(FABRIC_QUERY_REPEATS):
                    for cid in classes:
                        t0 = time.perf_counter()
                        router.query_all(int(cid))
                        lat.append(time.perf_counter() - t0)
                self.record(
                    "fabric_parallel_query_p50_%s" % suffix, "ms",
                    float(np.percentile(np.asarray(lat) * 1e3, 50)),
                    streams=len(FABRIC_STREAMS), workers=num_workers,
                    classes=len(classes), cpu_count=cpu_count,
                )
            finally:
                supervisor.shutdown()

        if 1 in rates and max(rates) > 1:
            top = max(rates)
            self.record(
                "fabric_parallel_speedup_%dw" % top, "x",
                rates[top] / rates[1],
                workers=top, cpu_count=cpu_count,
            )

    def bench_mttr_failover(self):
        """Self-healing drill: kill a worker under mixed load, measure
        time-to-first-healthy-answer and the ingest-rate dip.

        Half the fleet feed is ingested durably, then one shard's worker
        process is killed cold.  ``mttr_failover_s`` is the wall time
        from the kill to the first healthy (retried) query answer --
        detection + respawn + WAL replay + the query itself.  The
        ``failover_ingest`` window *starts at the kill* and covers that
        healing query plus the feed's second half, so its rows/s vs the
        no-kill ``failover_ingest_baseline`` (same window, no kill) is
        the failover's throughput dip under load.
        """
        from repro.fabric import FabricRouter, FabricSupervisor

        feed, classes, _ = self._fabric_fleet()
        half = len(feed) // 2
        tail_rows = sum(len(chunk) for _, chunk in feed[half:])
        configs = {name: self.config for name in FABRIC_STREAMS}
        cpu_count = _usable_cpus()

        def run(kill: bool):
            supervisor = FabricSupervisor(["shard-0", "shard-1"])
            try:
                router = FabricRouter(
                    supervisor.clients(), max_retries=2,
                    recover_configs=configs,
                )
                for name in FABRIC_STREAMS:
                    router.open_stream(
                        name,
                        fps=STREAM_FPS,
                        config=self.config,
                        index_mode="materialized",
                        durable=True,  # the respawn path replays the WAL
                    )
                router.append_many(feed[:half])
                victim = router.placement.shard_of(FABRIC_STREAMS[0])
                t0 = time.perf_counter()
                if kill:
                    worker = supervisor._worker(victim)
                    worker.process.kill()
                    worker.process.join()
                # the first healthy answer: the router's retry respawns
                # the worker (mirror + WAL replay) under the hood
                router.query(FABRIC_STREAMS[0], int(classes[0]))
                mttr = time.perf_counter() - t0
                router.append_many(feed[half:])
                rate = tail_rows / (time.perf_counter() - t0)
                return mttr, rate
            finally:
                supervisor.shutdown()

        # failure drills respawn + replay every repeat: cap at 2 rounds
        # (no warm-up -- a cold fabric is the scenario)
        mttr_best = kill_rate_best = base_rate_best = None
        for _ in range(max(1, min(self.repeats, 2))):
            mttr, rate = run(kill=True)
            mttr_best = mttr if mttr_best is None else min(mttr_best, mttr)
            kill_rate_best = (
                rate if kill_rate_best is None else max(kill_rate_best, rate)
            )
            _, rate = run(kill=False)
            base_rate_best = (
                rate if base_rate_best is None else max(base_rate_best, rate)
            )
        self.record("mttr_failover_s", "s", mttr_best,
                    streams=len(FABRIC_STREAMS), workers=2,
                    cpu_count=cpu_count)
        self.record("failover_ingest", "rows_per_s", kill_rate_best,
                    streams=len(FABRIC_STREAMS), workers=2,
                    cpu_count=cpu_count)
        self.record("failover_ingest_baseline", "rows_per_s", base_rate_best,
                    streams=len(FABRIC_STREAMS), workers=2,
                    cpu_count=cpu_count)

    def bench_frontdoor_qos(self):
        """QoS drill: the loadgen skewed two-tenant preset through the
        FrontDoor (admission control + ingest backpressure + priority
        batch formation; see ``docs/QOS.md``).

        Per tenant this records the *admitted* throughput and the
        admitted-op latency percentiles.  The interesting shape, not
        just the magnitudes: the interactive tenant (well inside its
        budget) should achieve its offered rate with p99 under its
        declared SLO, while the bulk tenant (offering ~4x its declared
        budget) should be clamped near the budget -- its achieved qps
        measures the token bucket, not the machine.
        """
        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        from loadgen import run_loadgen

        duration_s = {"quick": 3.0, "full": 6.0}.get(self.scale, 3.0)
        # one warm-up run settles model/extractor caches; loadgen's
        # closed loop is wall-clock driven, so repeats average noise
        # poorly -- keep the single post-warm-up run and let the
        # duration do the smoothing
        run_loadgen(mode="inproc", duration_s=1.0)
        report = run_loadgen(mode="inproc", duration_s=duration_s)
        for tenant, t in sorted(report["tenants"].items()):
            base = "frontdoor_qos_%s" % tenant
            extra = {
                "priority": t["priority"],
                "offered_qps": t["target_qps"],
                "qps_budget": t["qps_budget"],
                "slo_p99_ms": t["slo_p99_ms"],
                "duration_s": report["duration_s"],
            }
            self.record(base + "_qps", "qps", t["achieved_qps"], **extra)
            self.record(base + "_p50_ms", "ms", t["p50_ms"], **extra)
            self.record(base + "_p99_ms", "ms", t["p99_ms"], **extra)

    def bench_observability_overhead(self):
        """The observability tax: live fleet ingest + queries through a
        1-shard in-process router with tracing off vs sampling at the
        default rate (``repro.obs.trace.DEFAULT_SAMPLE_RATE``).

        The metrics registry is structurally always on -- tracing is the
        runtime knob -- so the plain/traced delta is the cost a deploy
        actually toggles: walk-in sampling on the query path, scatter
        span bookkeeping, and the span sink.  Both configurations run
        back-to-back inside each repeat so host drift cancels out of
        the ``obs_overhead_*`` ratios (1.0 == free, lower == overhead).
        """
        from repro.fabric import FabricRouter, ShardNode
        from repro.obs.trace import (
            DEFAULT_SAMPLE_RATE,
            configure_tracing,
            disable_tracing,
            get_sink,
            install_sink,
        )

        feed, classes, total_rows = self._fabric_fleet()

        def build_and_ingest():
            router = FabricRouter([ShardNode("shard-0")])
            for name in FABRIC_STREAMS:
                router.open_stream(
                    name,
                    fps=STREAM_FPS,
                    config=self.config,
                    index_mode="materialized",
                    durable=False,
                )
            t0 = time.perf_counter()
            for name, chunk in feed:
                router.append(name, chunk)
            return router, time.perf_counter() - t0

        def query_p95_ms(router):
            lat = []
            for _ in range(FABRIC_QUERY_REPEATS):
                for cid in classes:
                    t0 = time.perf_counter()
                    router.query_all(int(cid))
                    lat.append(time.perf_counter() - t0)
            return float(np.percentile(np.asarray(lat) * 1e3, 95))

        ingest_s = {"plain": None, "traced": None}
        q95_ms = {"plain": None, "traced": None}
        for rep in range(1 + self.repeats):  # 1 warm-up round
            # alternate which mode runs first: within a repeat the second
            # run sits on a warmer allocator/cache, and without the swap
            # that position bias reads as fake tracing overhead
            order = (
                ("plain", "traced") if rep % 2 == 0 else ("traced", "plain")
            )
            for mode in order:
                if mode == "traced":
                    install_sink()  # fresh bounded sink per traced round
                    configure_tracing(DEFAULT_SAMPLE_RATE)
                else:
                    disable_tracing()
                try:
                    router, took = build_and_ingest()
                    q = query_p95_ms(router)
                finally:
                    disable_tracing()
                if rep > 0:
                    ingest_s[mode] = (
                        took if ingest_s[mode] is None
                        else min(ingest_s[mode], took)
                    )
                    q95_ms[mode] = (
                        q if q95_ms[mode] is None else min(q95_ms[mode], q)
                    )
        get_sink().drain()  # don't leak bench spans into later sections

        extra = {
            "streams": len(FABRIC_STREAMS), "shards": 1,
            "sample_rate": DEFAULT_SAMPLE_RATE,
        }
        for mode in ("plain", "traced"):
            self.record(
                "obs_ingest_%s" % mode, "rows_per_s",
                total_rows / ingest_s[mode], **extra
            )
            self.record(
                "obs_query_p95_%s" % mode, "ms", q95_ms[mode],
                classes=len(classes), **extra
            )
        # traced/plain ratios: 1.0 means observability is free; the CI
        # smoke (scripts/check_obs_overhead.py) warns below 0.98
        self.record(
            "obs_overhead_ingest", "x",
            ingest_s["plain"] / ingest_s["traced"], **extra
        )
        self.record(
            "obs_overhead_query", "x",
            q95_ms["plain"] / q95_ms["traced"], **extra
        )

    def run_all(self, sections=None, fabric_workers=None) -> Dict[str, Dict]:
        wanted = set(sections) if sections else set(SECTION_ORDER)
        unknown = wanted - set(SECTION_ORDER)
        if unknown:
            raise SystemExit(
                "unknown section(s) %s (have: %s)"
                % (", ".join(sorted(unknown)), ", ".join(SECTION_ORDER))
            )
        print("[bench] scale=%s rows=%d stream=%s" % (
            self.scale, len(self.table), self.table.stream))
        # query/checkpoint reuse the ingest sections' systems, so asking
        # for them implies (and records) their ingest dependency
        oneshot = live = None
        if wanted & {"ingest_oneshot", "query"}:
            oneshot = self.bench_ingest_oneshot()
        if wanted & {"ingest_live", "checkpoint"}:
            live = self.bench_ingest_live()
        if "ingest_live_journaled" in wanted:
            self.bench_ingest_live_journaled()
        if "cluster_kernels" in wanted:
            self.bench_cluster_kernels()
        if "query" in wanted:
            self.bench_query(oneshot)
        if "checkpoint" in wanted:
            self.bench_checkpoint(live)
        if "recovery" in wanted:
            self.bench_recovery()
        if "fabric" in wanted:
            self.bench_fabric_scatter_gather()
        if "fabric_parallel" in wanted:
            self.bench_fabric_parallel(fabric_workers)
        if "mttr_failover" in wanted:
            self.bench_mttr_failover()
        if "frontdoor_qos" in wanted:
            self.bench_frontdoor_qos()
        if "observability_overhead" in wanted:
            self.bench_observability_overhead()
        return self.results


# -- compare mode -----------------------------------------------------------

def load_bench(path: str) -> Dict:
    with open(path) as fh:
        doc = json.load(fh)
    if "results" not in doc:
        raise SystemExit("%s: not a BENCH file (no 'results')" % path)
    return doc


def compare(base_path: str, new_path: str, tolerance: float, warn_only: bool) -> int:
    base = load_bench(base_path)["results"]
    new = load_bench(new_path)["results"]
    shared = sorted(set(base) & set(new))
    # aliased pairs: a new benchmark missing from the baseline is gated
    # against its designated older counterpart (e.g. journaled live
    # ingest against the pre-journal live path)
    aliased: List[tuple] = []
    for key in sorted(set(new) - set(base)):
        name, _, scale = key.rpartition("@")
        fallback = COMPARE_ALIASES.get(name)
        if fallback and "%s@%s" % (fallback, scale) in base:
            aliased.append((key, "%s@%s" % (fallback, scale)))
    if not shared and not aliased:
        print("[bench-compare] no shared benchmark keys between %s and %s"
              % (base_path, new_path))
        return 0
    regressions: List[str] = []
    print("%-34s %14s %14s %9s" % ("benchmark", "base", "new", "delta"))

    def diff(label, b, n, check_config=True):
        if check_config and b.get("config") != n.get("config"):
            print("%-34s   (config changed; skipping)" % label)
            return
        bv, nv = b["value"], n["value"]
        higher_better = HIGHER_IS_BETTER.get(b["metric"], True)
        if bv == 0:
            ratio = 0.0
        else:
            ratio = (nv - bv) / bv
        shown = "%+8.1f%%" % (100 * ratio)
        regressed = (ratio < -tolerance) if higher_better else (ratio > tolerance)
        flag = "  << REGRESSION" if regressed else ""
        print("%-34s %14.1f %14.1f %9s%s" % (label, bv, nv, shown, flag))
        if regressed:
            regressions.append(label)

    for key in shared:
        diff(key, base[key], new[key])
    for key, fallback in aliased:
        diff("%s (vs %s)" % (key, fallback), base[fallback], new[key],
             check_config=False)
    if regressions:
        print("[bench-compare] %d benchmark(s) regressed beyond %.0f%%: %s"
              % (len(regressions), 100 * tolerance, ", ".join(regressions)))
        return 0 if warn_only else 1
    print("[bench-compare] no regression beyond %.0f%%" % (100 * tolerance))
    return 0


# -- entry point ------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized window (~20k rows) instead of ~100k")
    parser.add_argument("--scales", default=None,
                        help="comma-separated scales to run (full,quick)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed repetitions per section (keeps the best)")
    parser.add_argument("--sections", default=None,
                        help="comma-separated sections to run (default: all; "
                             "see SECTION_ORDER)")
    parser.add_argument("--fabric-workers", default=None,
                        help="comma-separated worker counts for the "
                             "fabric_parallel section (default: 1,4)")
    parser.add_argument("--output", default=os.path.join(REPO_ROOT, "BENCH_PR10.json"))
    parser.add_argument("--compare", nargs=2, metavar=("BASE", "NEW"),
                        help="diff two BENCH files instead of running")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative regression tolerance for --compare")
    parser.add_argument("--warn-only", action="store_true",
                        help="report --compare regressions without failing")
    args = parser.parse_args(argv)

    if args.compare:
        return compare(args.compare[0], args.compare[1], args.tolerance,
                       args.warn_only)

    if args.scales:
        scales = [s.strip() for s in args.scales.split(",") if s.strip()]
    else:
        scales = ["quick"] if args.quick else ["full", "quick"]
    for scale in scales:
        if scale not in SCALES:
            raise SystemExit("unknown scale %r (have: %s)"
                             % (scale, ", ".join(SCALES)))

    sections = None
    if args.sections:
        sections = [s.strip() for s in args.sections.split(",") if s.strip()]
    fabric_workers = None
    if args.fabric_workers:
        fabric_workers = [
            int(n) for n in args.fabric_workers.split(",") if n.strip()
        ]

    results: Dict[str, Dict] = {}
    for scale in scales:
        results.update(
            Runner(scale, args.repeats).run_all(
                sections=sections, fabric_workers=fabric_workers
            )
        )

    doc = {
        "schema": SCHEMA_VERSION,
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "scales": scales,
            "repeats": args.repeats,
        },
        "results": results,
    }
    with open(args.output, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("[bench] wrote %s" % args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
