#!/usr/bin/env python
"""Warn when the fabric-parallel speedup collapses on a multi-core box.

Reads a BENCH json (``scripts/bench.py`` output) and emits a GitHub
Actions ``::warning`` line for every ``fabric_parallel_speedup_*``
entry measured on a multi-core runner whose ratio is at or below 1x --
there, extra workers should help, so <=1x means the wire protocol is
taxing instead of scaling. Single-core boxes legitimately sit near 1x
(the bench exists to bound the protocol tax) and are never warned
about. Always exits 0: this is a trend signal, not a gate.

Usage: python scripts/check_parallel_speedup.py BENCH.json [...]
"""

import json
import sys


def check(path: str) -> int:
    warned = 0
    with open(path) as fh:
        results = json.load(fh)["results"]
    for name, entry in sorted(results.items()):
        if not name.startswith("fabric_parallel_speedup_"):
            continue
        speedup = float(entry["value"])
        cores = int(entry.get("config", {}).get("cpu_count", 1))
        if cores > 1 and speedup <= 1.0:
            print("::warning title=fabric-parallel speedup::"
                  "%s is %.2fx on a %d-core runner (%s)"
                  % (name, speedup, cores, path))
            warned += 1
        else:
            print("[speedup] %s: %.2fx on %d core(s) -- ok"
                  % (name, speedup, cores))
    return warned


def main(argv) -> int:
    if not argv:
        print("usage: check_parallel_speedup.py BENCH.json [...]",
              file=sys.stderr)
        return 2
    for path in argv:
        check(path)
    return 0  # warn-only by design


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
