#!/usr/bin/env python
"""Docs check: README.md code blocks must stay valid.

Extracts every fenced ``python`` code block from README.md, checks that
it still parses, and executes its import statements so renamed or
removed public symbols fail CI instead of silently rotting in the docs.

Run:  PYTHONPATH=src python scripts/check_readme_quickstart.py
"""

import ast
import pathlib
import re
import sys

README = pathlib.Path(__file__).resolve().parent.parent / "README.md"

BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def main() -> int:
    text = README.read_text()
    blocks = BLOCK_RE.findall(text)
    if not blocks:
        print("FAIL: no ```python blocks found in README.md")
        return 1

    failures = 0
    for i, block in enumerate(blocks, start=1):
        try:
            tree = ast.parse(block)
        except SyntaxError as exc:
            print("FAIL: README block %d does not parse: %s" % (i, exc))
            failures += 1
            continue
        imports = [
            node
            for node in tree.body
            if isinstance(node, (ast.Import, ast.ImportFrom))
        ]
        for node in imports:
            snippet = ast.get_source_segment(block, node) or "<import>"
            try:
                exec(compile(ast.Module([node], []), "<readme>", "exec"), {})
            except Exception as exc:
                print("FAIL: README block %d: %r -> %s" % (i, snippet, exc))
                failures += 1
            else:
                print("ok: %s" % snippet)
    if failures:
        print("%d README import(s) broken" % failures)
        return 1
    print("README: %d block(s) parsed, all imports valid" % len(blocks))
    return 0


if __name__ == "__main__":
    sys.exit(main())
