#!/usr/bin/env python
"""Convert raw span dumps to Perfetto-loadable Chrome trace JSON.

The tracing layer (``repro.obs.trace``) records spans as plain dicts;
``dump_spans`` writes them as JSONL.  This CLI converts such a dump --
or re-wraps an already-exported Chrome trace -- into the Chrome
trace-event format that https://ui.perfetto.dev and ``chrome://tracing``
open directly:

    PYTHONPATH=src python scripts/trace_export.py spans.jsonl trace.json
    PYTHONPATH=src python scripts/trace_export.py --summary spans.jsonl

``--summary`` prints per-trace span trees instead of writing a file,
which is the quick way to check that a trace stitched all the way from
the front door through the router scatter to the worker dispatch.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.obs.trace import export_chrome_trace, load_spans  # noqa: E402


def print_summary(spans: List[Dict[str, Any]]) -> None:
    """Per-trace span trees, children indented under their parents."""
    by_trace: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        by_trace.setdefault(str(span.get("trace_id")), []).append(span)
    for trace_id in sorted(by_trace):
        group = by_trace[trace_id]
        by_id = {s.get("span_id"): s for s in group}
        children: Dict[Any, List[Dict[str, Any]]] = {}
        roots = []
        for s in group:
            parent = s.get("parent_id")
            if parent in by_id:
                children.setdefault(parent, []).append(s)
            else:
                roots.append(s)
        print("trace %s (%d spans)" % (trace_id, len(group)))

        def walk(span: Dict[str, Any], depth: int) -> None:
            print(
                "  %s%-24s %8.3fms  pid=%s"
                % (
                    "  " * depth,
                    span.get("name", "span"),
                    float(span.get("dur_s", 0.0)) * 1e3,
                    span.get("pid"),
                )
            )
            for child in sorted(
                children.get(span.get("span_id"), []),
                key=lambda s: s.get("ts_wall_s", 0.0),
            ):
                walk(child, depth + 1)

        for root in sorted(roots, key=lambda s: s.get("ts_wall_s", 0.0)):
            walk(root, 1)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("spans", help="span JSONL dump (repro.obs.trace.dump_spans)")
    parser.add_argument(
        "output", nargs="?", default=None,
        help="Chrome trace JSON to write (omit with --summary)",
    )
    parser.add_argument(
        "--summary", action="store_true",
        help="print per-trace span trees instead of writing a file",
    )
    args = parser.parse_args(argv)

    spans = load_spans(args.spans)
    if args.summary:
        print_summary(spans)
        if args.output is None:
            return 0
    if args.output is None:
        parser.error("output path required unless --summary is given")
    n = export_chrome_trace(spans, args.output)
    print(
        "[trace-export] wrote %d events to %s (open in ui.perfetto.dev)"
        % (n, args.output)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
