#!/usr/bin/env python
"""Warn-only gate on the observability overhead ratios in a BENCH file.

The ``observability_overhead`` bench section records traced/plain
throughput and latency ratios (``obs_overhead_ingest`` and
``obs_overhead_query``): 1.0 means tracing at the default sample rate
is free, lower is the overhead.  This checker reads a BENCH json and
*warns* when any ratio falls below the floor (default 0.98, i.e. more
than 2% overhead) -- it never fails the build, because single-run CI
latency ratios are noisy; the warning is the tripwire that tells a
reviewer to re-run locally with more repeats.

    PYTHONPATH=src python scripts/bench.py --quick \
        --sections observability_overhead --output bench_obs.json
    python scripts/check_obs_overhead.py bench_obs.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

OVERHEAD_KEY_PREFIX = "obs_overhead_"
DEFAULT_FLOOR = 0.98


def check(path: str, floor: float) -> int:
    with open(path) as fh:
        doc = json.load(fh)
    results = doc.get("results", {})
    ratios = {
        key: entry["value"]
        for key, entry in sorted(results.items())
        if key.partition("@")[0].startswith(OVERHEAD_KEY_PREFIX)
    }
    if not ratios:
        print(
            "[obs-overhead] %s has no %s* results; run the "
            "observability_overhead bench section first"
            % (path, OVERHEAD_KEY_PREFIX)
        )
        return 0
    warned: List[str] = []
    for key, ratio in ratios.items():
        overhead_pct = max(0.0, (1.0 - ratio) * 100.0)
        ok = ratio >= floor
        print(
            "[obs-overhead] %-32s %.4fx  (~%.1f%% overhead)%s"
            % (key, ratio, overhead_pct, "" if ok else "  << WARN")
        )
        if not ok:
            warned.append(key)
    if warned:
        print(
            "[obs-overhead] WARNING: %d ratio(s) below %.2f (>%.0f%% "
            "overhead): %s -- warn-only, not failing the build"
            % (len(warned), floor, (1.0 - floor) * 100.0, ", ".join(warned))
        )
    else:
        print("[obs-overhead] all ratios at or above %.2f" % floor)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench", help="BENCH json produced by scripts/bench.py")
    parser.add_argument(
        "--floor", type=float, default=DEFAULT_FLOOR,
        help="minimum acceptable traced/plain ratio (default %(default)s)",
    )
    args = parser.parse_args(argv)
    return check(args.bench, args.floor)


if __name__ == "__main__":
    sys.exit(main())
