"""Figure 6: parameter selection on the ingest/query Pareto boundary.

Paper: the tuner evaluates all viable configurations (those meeting the
precision/recall targets) in (normalized ingest cost, normalized query
latency) space, draws the Pareto boundary, and places Balance at the
minimum summed GPU cost, with Opt-Ingest at the cheap-ingest end.
"""

from repro.eval import experiments


def test_fig6_parameter_selection(once, benchmark):
    result = once(benchmark, experiments.fig6_parameter_selection, "auburn_c")
    viable, pareto, chosen = result["viable"], result["pareto"], result["chosen"]
    print()
    print("  %d viable configurations, %d on the Pareto boundary" % (len(viable), len(pareto)))
    for name, p in chosen.items():
        print(
            "  %-11s %-40s ingest=%.4f query=%.4f"
            % (name, "%s K=%d T=%.2f" % (p["model"][:32], p["k"], p["t"]),
               p["ingest_cost"], p["query_latency"])
        )

    assert len(viable) >= 5
    assert 1 <= len(pareto) <= len(viable)

    # every viable point is dominated by (or on) the boundary
    for v in viable:
        assert any(
            p["ingest_cost"] <= v["ingest_cost"] + 1e-12
            and p["query_latency"] <= v["query_latency"] + 1e-12
            for p in pareto
        )
    # the boundary is a proper frontier: sorted by ingest cost, query
    # latency decreases
    costs = [p["ingest_cost"] for p in pareto]
    lats = [p["query_latency"] for p in pareto]
    assert costs == sorted(costs)
    assert lats == sorted(lats, reverse=True)

    # policy semantics
    assert chosen["opt-ingest"]["ingest_cost"] <= chosen["balance"]["ingest_cost"] + 1e-12
    assert chosen["opt-query"]["query_latency"] <= chosen["balance"]["query_latency"] + 1e-12
    # every chosen point is far inside the baseline unit box
    for p in chosen.values():
        assert p["ingest_cost"] < 0.2 and p["query_latency"] < 0.2
