"""Ablation: dynamically adjusting Kx at query time (Section 5).

A query may restrict itself to Kx <= K index entries: fewer candidate
clusters to verify with GT-CNN (lower latency), at some recall cost.
The incremental variant grows Kx in batches without re-verifying
centroids it already paid for.
"""

import numpy as np

from repro.cnn.zoo import cheap_cnn, resnet152
from repro.cnn.specialize import specialize
from repro.core.config import FocusConfig
from repro.core.ingest import IngestPipeline
from repro.core.query import QueryEngine
from repro.video.synthesis import generate_observations


def _setup():
    table = generate_observations("auburn_c", 120.0, 30.0)
    model = specialize(cheap_cnn(1), table.class_histogram(), 8, "auburn_c")
    config = FocusConfig(model=model, k=6, cluster_threshold=0.12)
    ingest = IngestPipeline(config).run(table)
    engine = QueryEngine(ingest.index, table, model, resnet152())
    cls = int(table.dominant_classes()[0])
    return table, engine, cls


def test_dynamic_kx_trades_latency_for_recall(once, benchmark):
    table, engine, cls = once(benchmark, _setup)
    full = engine.query(cls)
    kx2 = engine.query(cls, kx=2)
    kx1 = engine.query(cls, kx=1)
    print()
    for name, r in (("K=6", full), ("Kx=2", kx2), ("Kx=1", kx1)):
        print(
            "  %-5s candidates=%4d  matched=%4d  gpu=%.3fs"
            % (name, len(r.candidate_clusters), len(r.matched_clusters), r.gpu_seconds)
        )
    # smaller Kx verifies fewer centroids => lower latency
    assert len(kx1.candidate_clusters) <= len(kx2.candidate_clusters)
    assert len(kx2.candidate_clusters) < len(full.candidate_clusters)
    assert kx2.gpu_seconds < full.gpu_seconds
    # and returns a subset of the results
    assert set(kx2.matched_clusters) <= set(full.matched_clusters)
    assert len(kx2.returned_frames) <= len(full.returned_frames)


def test_incremental_kx_refunds_duplicates(once, benchmark):
    table, engine, cls = once(benchmark, lambda: _setup())
    batches = engine.query_incremental(cls, batches=[1, 3, 6])
    print()
    total_inferences = sum(r.gt_inferences for r in batches)
    oneshot = engine.query(cls, kx=6)
    print(
        "  incremental total GT inferences: %d  one-shot: %d"
        % (total_inferences, oneshot.gt_inferences)
    )
    # growing Kx in batches costs no more GT work than the final Kx alone
    assert total_inferences <= oneshot.gt_inferences
    # and the final batch returns the same clusters as the one-shot query
    assert set(batches[-1].matched_clusters) == set(oneshot.matched_clusters)
