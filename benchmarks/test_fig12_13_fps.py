"""Figures 12-13: sensitivity to the frame sampling rate.

Paper: the ingest-cost factor is roughly flat across 30/10/5/1 fps
(58-64x; the saving comes from the cheap specialized model, orthogonal
to frame rate), while the query-latency factor degrades at lower rates
(less per-track redundancy for clustering to exploit) yet stays an
order of magnitude at 1 fps.
"""

import numpy as np

from repro.eval import experiments

STREAMS = ("auburn_c", "jacksonh", "lausanne", "cnn")
FPS = (30.0, 10.0, 1.0)


def test_fig12_13_fps_sensitivity(once, benchmark):
    rows = once(
        benchmark,
        experiments.fig12_13_fps_sensitivity,
        streams=STREAMS,
        fps_values=FPS,
    )
    by_fps = {}
    for r in rows:
        by_fps.setdefault(r["fps"], []).append(r)
    print()
    for fps in FPS:
        sub = by_fps[fps]
        print(
            "  %4.0f fps: ingest avg %5.0fx   query avg %5.0fx"
            % (fps, np.mean([r["ingest_cheaper_by"] for r in sub]),
               np.mean([r["query_faster_by"] for r in sub]))
        )

    ingest_30 = np.mean([r["ingest_cheaper_by"] for r in by_fps[30.0]])
    ingest_1 = np.mean([r["ingest_cheaper_by"] for r in by_fps[1.0]])
    query_30 = np.mean([r["query_faster_by"] for r in by_fps[30.0]])
    query_1 = np.mean([r["query_faster_by"] for r in by_fps[1.0]])

    # Figure 12's shape: ingest factor roughly flat across frame rates
    # (pixel differencing shrinks at low fps, so it may dip slightly)
    assert ingest_1 > 0.5 * ingest_30
    assert ingest_1 > 20
    # Figure 13's shape: query factor degrades at low fps ...
    assert query_1 < query_30
    # ... but Focus remains roughly an order of magnitude faster
    assert query_1 > 4
