"""Figure 8: effect of each Focus component (9 streams).

Paper: generic compressed models help but are not the main source of
improvement; adding per-stream specialization greatly reduces both
costs (query latency 5-25x); adding clustering further reduces query
latency (up to 56x) at negligible ingest cost.
"""

import numpy as np

from repro.eval import experiments

# a 6-stream subset of the paper's 9 keeps the ablation ladder (3 full
# tuner+ingest runs per stream) tractable
STREAMS = ("auburn_c", "city_a_r", "jacksonh", "lausanne", "cnn", "msnbc")


def test_fig8_component_ablation(once, benchmark):
    rows = once(
        benchmark, experiments.fig8_component_ablation, streams=STREAMS,
        duration_s=180.0,
    )
    by_design = {}
    for r in rows:
        by_design.setdefault(r["design"], []).append(r)
    print()
    for design, drs in by_design.items():
        qf = [r["query_faster_by"] for r in drs]
        inf = [r["ingest_cheaper_by"] for r in drs]
        print(
            "  %-36s ingest avg %5.0fx   query avg %5.0fx"
            % (design, np.mean(inf), np.mean(qf))
        )

    compressed = {r["stream"]: r for r in by_design["compressed"]}
    spec = {r["stream"]: r for r in by_design["compressed+specialized"]}
    full = {r["stream"]: r for r in by_design["compressed+specialized+clustering"]}

    for stream in STREAMS:
        # adding specialization to the search space never makes ingest
        # more expensive (the tuner may keep the generic model when no
        # specialized candidate is viable on a stream's sample)
        assert spec[stream]["ingest_cheaper_by"] >= compressed[stream]["ingest_cheaper_by"] - 1e-9, stream
        # clustering is the main query-latency lever (paper: up to 56x)
        assert full[stream]["query_faster_by"] > 1.5 * spec[stream]["query_faster_by"], stream
        # and stays in the same ingest-cost regime: clustering itself
        # runs on CPU, so any ingest delta comes from the tuner picking
        # a different cheap model once clustering absorbs query cost
        assert full[stream]["ingest_cheaper_by"] > 0.55 * spec[stream]["ingest_cheaper_by"], stream
        # specialization never makes queries slower than compression alone
        assert spec[stream]["query_faster_by"] > 0.7 * compressed[stream]["query_faster_by"], stream

    # aggregate ordering across the ladder matches Figure 8
    avg = lambda design, key: np.mean([r[key] for r in by_design[design]])
    assert avg("compressed+specialized", "ingest_cheaper_by") > 2 * avg("compressed", "ingest_cheaper_by")
    assert (
        avg("compressed+specialized+clustering", "query_faster_by")
        > 3 * avg("compressed+specialized", "query_faster_by")
    )
