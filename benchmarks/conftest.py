"""Benchmark configuration.

Each benchmark regenerates one table or figure of the paper and checks
its *shape*: who wins, by roughly what factor, and where crossovers
fall.  Absolute numbers come from the simulated substrate and are
recorded (paper-vs-measured) in EXPERIMENTS.md.

Underlying experiment runs are cached in-process (repro.eval.runner),
so pytest-benchmark's timing loop measures the orchestration cost while
the assertions see one consistent set of results.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
