"""Figure 9: Opt-Ingest vs Opt-Query trade-offs per stream.

Paper: on average Opt-Ingest reaches 95x cheaper ingest while still
being 35x faster at query; Opt-Query reaches 49x faster queries at 15x
cheaper ingest -- the trade-off flexibility exists on every stream.
"""

import numpy as np

from repro.eval import experiments


def test_fig9_policy_tradeoffs(once, benchmark):
    rows = once(benchmark, experiments.fig9_policy_tradeoffs)
    print()
    by_stream = {}
    for r in rows:
        by_stream.setdefault(r["stream"], {})[r["policy"]] = r
    for stream, policies in by_stream.items():
        oi, oq = policies["opt-ingest"], policies["opt-query"]
        print(
            "  %-10s Opt-I (I=%4.0fx, Q=%4.0fx)   Opt-Q (I=%4.0fx, Q=%4.0fx)"
            % (stream, oi["ingest_cheaper_by"], oi["query_faster_by"],
               oq["ingest_cheaper_by"], oq["query_faster_by"])
        )

    for stream, policies in by_stream.items():
        oi, oq = policies["opt-ingest"], policies["opt-query"]
        # Opt-Ingest never ingests more expensively than Opt-Query
        assert oi["ingest_cheaper_by"] >= oq["ingest_cheaper_by"] - 1e-9, stream
        # Opt-Query never queries slower than Opt-Ingest
        assert oq["query_faster_by"] >= oi["query_faster_by"] - 1e-9, stream
        # both remain dramatically better than the baselines
        assert oi["ingest_cheaper_by"] > 20
        assert oq["query_faster_by"] > 5

    avg_oi_ingest = np.mean([p["opt-ingest"]["ingest_cheaper_by"] for p in by_stream.values()])
    avg_oq_query = np.mean([p["opt-query"]["query_faster_by"] for p in by_stream.values()])
    print("  averages: Opt-I ingest %.0fx (paper 95x), Opt-Q query %.0fx (paper 49x)"
          % (avg_oi_ingest, avg_oq_query))
    assert avg_oi_ingest > 40
    assert avg_oq_query > 10
