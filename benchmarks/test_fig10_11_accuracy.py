"""Figures 10-11: sensitivity to the accuracy target.

Paper: at 97/98/99% targets the ingest-cost factor stays roughly flat
(62-64x vs 95%'s) because the specialized CNN still runs at ingest,
while the query-latency factor degrades (37x -> 15x/12x/8x) because
more top-K results must be verified.
"""

import numpy as np

from repro.eval import experiments

STREAMS = ("auburn_c", "jacksonh", "lausanne", "cnn")
TARGETS = (0.95, 0.97, 0.99)


def test_fig10_11_accuracy_sensitivity(once, benchmark):
    rows = once(
        benchmark,
        experiments.fig10_11_accuracy_sensitivity,
        streams=STREAMS,
        targets=TARGETS,
    )
    by_target = {}
    for r in rows:
        by_target.setdefault(r["target"], []).append(r)
    print()
    for t in TARGETS:
        sub = [r for r in by_target.get(t, []) if r["ingest_cheaper_by"] == r["ingest_cheaper_by"]]
        if not sub:
            print("  target %.2f: no viable configurations" % t)
            continue
        print(
            "  target %.2f: ingest avg %5.0fx   query avg %5.0fx   (%d streams viable)"
            % (t, np.mean([r["ingest_cheaper_by"] for r in sub]),
               np.mean([r["query_faster_by"] for r in sub]), len(sub))
        )

    base = [r for r in by_target[0.95] if r["ingest_cheaper_by"] == r["ingest_cheaper_by"]]
    strict = [r for r in by_target[0.99] if r["ingest_cheaper_by"] == r["ingest_cheaper_by"]]
    assert base, "95% target must be viable everywhere"
    # Figure 10's shape: ingest factor stays an order of magnitude even
    # at strict targets (for the streams that remain viable)
    for r in base + strict:
        assert r["ingest_cheaper_by"] > 20
    # Figure 11's shape: query factor does not improve when the target
    # tightens; typically it degrades
    if strict:
        base_by_stream = {r["stream"]: r for r in base}
        for r in strict:
            assert (
                r["query_faster_by"]
                <= base_by_stream[r["stream"]]["query_faster_by"] * 1.35
            ), r["stream"]
