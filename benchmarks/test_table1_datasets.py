"""Table 1: video dataset characteristics.

Paper: thirteen 12-hour streams across traffic (6), surveillance (4)
and news (3); one-third to one-half of frames have no moving objects
(Section 2.2.1).
"""

from repro.eval import experiments, reporting


def test_table1_dataset_characteristics(once, benchmark):
    rows = once(benchmark, experiments.table1_dataset_characteristics)
    print()
    print(
        reporting.format_table(
            rows,
            columns=(
                "type", "name", "observations", "tracks",
                "empty_frame_fraction", "present_classes", "dominant_classes",
            ),
            title="Table 1: dataset characteristics (simulated, 240 s windows)",
        )
    )
    assert len(rows) == 13
    domains = [r["type"] for r in rows]
    assert domains.count("traffic") == 6
    assert domains.count("surveillance") == 4
    assert domains.count("news") == 3
    # Section 2.2.1: large portions of video are empty of moving objects
    for r in rows:
        assert 0.15 <= r["empty_frame_fraction"] <= 0.65, r["name"]
        assert r["observations"] > 0
