"""Ablation: clustering at ingest time vs at query time (Section 4.2).

The paper clusters at ingest because (a) the query no longer waits on
clustering and (b) only centroids need storing in the index, instead of
every object's feature vector.  The GT-CNN verification work itself is
near-identical either way (the ordering of indexing and clustering is
"mostly commutative").
"""

import time

import numpy as np

from repro.cnn.zoo import cheap_cnn
from repro.cnn.specialize import specialize
from repro.core.clustering import cluster_table
from repro.core.ingest import simulate_pixel_diff
from repro.video.synthesis import generate_observations


def test_ingest_time_clustering_wins(once, benchmark):
    def run():
        table = generate_observations("auburn_c", 120.0, 30.0)
        model = specialize(cheap_cnn(1), table.class_histogram(), 5, "auburn_c")
        suppressed = simulate_pixel_diff(table)

        # ingest-time: cluster once while the video arrives
        t0 = time.perf_counter()
        ingest_clusters = cluster_table(table, model, 0.12, suppressed=suppressed)
        ingest_cluster_seconds = time.perf_counter() - t0

        # query-time: the same clustering runs inside the query's
        # critical path, over the queried interval
        interval = table.time_range(0.0, 60.0)
        t0 = time.perf_counter()
        query_clusters = cluster_table(interval, model, 0.12)
        query_cluster_seconds = time.perf_counter() - t0

        return (
            table, interval, ingest_clusters, query_clusters,
            ingest_cluster_seconds, query_cluster_seconds, model,
        )

    (table, interval, ingest_clusters, query_clusters,
     ingest_s, query_s, model) = once(benchmark, run)

    # storage: ingest-time keeps centroids only; query-time must retain
    # every object's feature vector until queried
    stored_ingest = ingest_clusters.num_clusters
    stored_query = len(table)
    print()
    print(
        "  stored vectors: ingest-time %d (centroids) vs query-time %d (all)"
        % (stored_ingest, stored_query)
    )
    print(
        "  query-path clustering cost: %.3fs added to every query"
        % query_s
    )
    assert stored_ingest < 0.25 * stored_query

    # the GT verification volume is comparable either way: clusters per
    # observation are similar on the interval and the full window
    rate_ingest = ingest_clusters.num_clusters / len(table)
    rate_query = query_clusters.num_clusters / max(len(interval), 1)
    assert 0.3 * rate_ingest < rate_query < 3.5 * rate_ingest

    # query-time clustering adds real latency to the query path
    assert query_s > 0.0
