"""Figure 5: recall vs K for the three generic cheap CNNs (lausanne).

Paper: CheapCNN1/2/3 (7x/28x/58x cheaper than GT-CNN) reach 90% recall
at K >= 60 / 100 / 200 respectively; recall rises steadily with K and
cheaper models need larger K.
"""

from repro.eval import experiments


def test_fig5_recall_vs_k(once, benchmark):
    result = once(benchmark, experiments.fig5_recall_vs_k, "lausanne")
    ks = result["ks"]
    print()
    for name, d in result["models"].items():
        print(
            "  %-10s (%.0fx cheaper)  " % (name, d["cheaper_than_gt"])
            + "  ".join("K=%d:%.2f" % (k, r) for k, r in zip(ks, d["recall"]))
        )

    models = result["models"]
    # cost anchors from the paper
    assert round(models["cheapcnn1"]["cheaper_than_gt"]) == 7
    assert round(models["cheapcnn2"]["cheaper_than_gt"]) == 28
    assert round(models["cheapcnn3"]["cheaper_than_gt"]) == 58

    for name, d in models.items():
        recall = d["recall"]
        # recall increases steadily with K
        assert all(b >= a - 0.01 for a, b in zip(recall, recall[1:])), name

    def recall_at(name, k):
        return models[name]["recall"][ks.index(k)]

    # the paper's 90% anchors: K>=60 / 100 / 200
    assert recall_at("cheapcnn1", 60) >= 0.85
    assert recall_at("cheapcnn2", 100) >= 0.85
    assert recall_at("cheapcnn3", 200) >= 0.85
    # cheaper models have lower recall at equal K
    for k in ks:
        assert recall_at("cheapcnn1", k) >= recall_at("cheapcnn2", k) - 0.02
        assert recall_at("cheapcnn2", k) >= recall_at("cheapcnn3", k) - 0.02
