"""Figure 3 / Section 2.2.2: class-frequency CDF and presence stats.

Paper: a small fraction (3-10%) of the most frequent object classes
cover >= 95% of objects; 22-33% of the 1000 classes occur in quiet
streams and 50-69% in busy news streams; the mean pairwise Jaccard
index of class sets is ~0.46.
"""

from repro.eval import experiments


def test_fig3_class_cdf(once, benchmark):
    result = once(benchmark, experiments.fig3_class_cdf)
    print()
    for stream, d in result["streams"].items():
        print(
            "  %-10s present=%5.2f  classes-for-95%%=%3d (%.1f%% of present)"
            % (stream, d["present_fraction"], d["classes_for_95pct"],
               100 * d["fraction_for_95pct"])
        )
    print("  mean Jaccard = %.2f (paper: 0.46)" % result["mean_jaccard"])

    for stream, d in result["streams"].items():
        # a small fraction of classes dominates (paper: 3-10%; we allow
        # up to 20% on the simulated tail)
        assert d["fraction_for_95pct"] <= 0.20, stream
        # the CDF is concave: most mass in the head
        cdf = d["cdf"]
        assert cdf[min(len(cdf) - 1, max(1, len(cdf) // 10))] > 0.80
    # news streams show far more classes than quiet streams
    present = {s: d["present_fraction"] for s, d in result["streams"].items()}
    assert present["msnbc"] > 1.5 * present["lausanne"]
    # streams share much of their class sets, but not all
    assert 0.15 <= result["mean_jaccard"] <= 0.7
