"""Figure 1: ingest-cost vs query-latency trade-off space (auburn_c).

Paper: Focus-Balance is simultaneously 86x cheaper than Ingest-all and
56x faster than Query-all; Opt-Ingest reaches (I=141x, Q=46x) and
Opt-Query (I=26x, Q=63x).
"""

from repro.eval import experiments


def test_fig1_tradeoff_space(once, benchmark):
    result = once(benchmark, experiments.fig1_tradeoff_space, "auburn_c")
    points = result["points"]
    print()
    for name, p in sorted(points.items()):
        if "I" in p:
            print("  %-18s I=%5.0fx  Q=%5.0fx" % (name, p["I"], p["Q"]))
        else:
            print("  %-18s ingest=%.2f query=%.2f" % (name, p["ingest_cost"], p["query_latency"]))

    balance = points["focus-balance"]
    opt_i = points["focus-opt-ingest"]
    opt_q = points["focus-opt-query"]

    # Focus beats both baselines by 1-2 orders of magnitude simultaneously
    assert balance["I"] > 20
    assert balance["Q"] > 10
    # the policies span a real trade-off: Opt-Ingest is at least as cheap
    # to ingest, Opt-Query at least as fast to query, as Balance
    assert opt_i["I"] >= balance["I"] - 1e-9
    assert opt_q["Q"] >= balance["Q"] - 1e-9
    # all Focus points sit far inside the baseline box
    for p in (balance, opt_i, opt_q):
        assert p["ingest_cost"] < 0.2
        assert p["query_latency"] < 0.2
