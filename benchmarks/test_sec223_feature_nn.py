"""Section 2.2.3: cheap-CNN feature vectors find duplicate objects.

Paper: for each object, the nearest neighbour by ResNet18 feature
vector belongs to the same class >99% of the time -- the property that
justifies clustering on cheap-CNN features.
"""

from repro.eval import experiments

STREAMS = ("auburn_c", "jacksonh", "lausanne", "cnn", "msnbc")


def test_sec223_nearest_neighbour_same_class(once, benchmark):
    fractions = once(
        benchmark, experiments.sec223_feature_nearest_neighbour, streams=STREAMS
    )
    print()
    for stream, frac in fractions.items():
        print("  %-10s NN same-class fraction: %.4f (paper: >0.99)" % (stream, frac))
    for stream, frac in fractions.items():
        assert frac > 0.98, stream
