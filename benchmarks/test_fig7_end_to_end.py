"""Figure 7: end-to-end ingest and query factors for all 13 streams.

Paper: Focus (Balance) is on average 58x (44-98x) cheaper than
Ingest-all and 37x (11-57x) faster than Query-all, at >= 95% precision
and recall everywhere.
"""

from repro.eval import experiments, reporting


def test_fig7_end_to_end(once, benchmark):
    result = once(benchmark, experiments.fig7_end_to_end)
    rows = result["rows"]
    print()
    print(
        reporting.format_table(
            rows,
            columns=("stream", "domain", "ingest_cheaper_by", "query_faster_by",
                     "precision", "recall"),
            title="Figure 7 (paper: ingest avg 58x / 44-98x; query avg 37x / 11-57x)",
        )
    )
    print(
        "  averages: ingest %.0fx, query %.0fx"
        % (result["avg_ingest_cheaper_by"], result["avg_query_faster_by"])
    )

    assert len(rows) == 13
    for r in rows:
        # Focus wins on both axes for every stream, by at least an order
        # of magnitude on ingest and substantially on query
        assert r["ingest_cheaper_by"] > 20, r["stream"]
        assert r["query_faster_by"] > 5, r["stream"]
        # the headline accuracy guarantee
        assert r["precision"] >= 0.94, r["stream"]
        assert r["recall"] >= 0.94, r["stream"]
    # averages in the paper's order of magnitude
    assert 30 <= result["avg_ingest_cheaper_by"] <= 160
    assert 10 <= result["avg_query_faster_by"] <= 110
