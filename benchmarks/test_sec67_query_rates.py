"""Section 6.7: applicability under extreme query rates.

Paper: even if *every* class of *every* video is queried, Focus's total
cost (cheap ingest + one GT-CNN pass per distinct cluster, cached
across queries) stays ~4x (up to 6x) cheaper than Ingest-all; and if
almost nothing is queried, running all of Focus's techniques at query
time is still ~22x (up to 34x) faster than Query-all.
"""

import numpy as np

from repro.eval import experiments

STREAMS = ("auburn_c", "jacksonh", "lausanne", "cnn", "msnbc")


def test_sec67_query_rates(once, benchmark):
    rows = once(benchmark, experiments.sec67_query_rates, streams=STREAMS)
    print()
    for r in rows:
        print(
            "  %-10s all-queried vs Ingest-all: %5.1fx   "
            "query-time-only vs Query-all: %5.1fx"
            % (r["stream"], r["all_queried_cheaper_than_ingest_all"],
               r["query_time_only_faster_than_query_all"])
        )

    for r in rows:
        # Focus stays cheaper than Ingest-all even when everything is
        # queried (paper: 4-6x; clustering density sets the exact value)
        assert r["all_queried_cheaper_than_ingest_all"] > 2
        # and a query-time-only Focus still beats Query-all comfortably
        assert r["query_time_only_faster_than_query_all"] > 5
