"""Ablation: pixel differencing of objects at ingest (Section 4.2).

Suppressing near-duplicate objects between adjacent frames cuts the
number of cheap-CNN invocations at ingest; the paper folds this into
its ingest savings.  Disabling it must raise ingest cost by exactly the
suppression ratio and leave accuracy unaffected (suppressed objects
join their track's current cluster).
"""

import numpy as np
import pytest

from repro.cnn.zoo import cheap_cnn, resnet152
from repro.cnn.specialize import specialize
from repro.core.config import FocusConfig
from repro.core.ingest import IngestPipeline
from repro.video.synthesis import generate_observations


def _ingest(pixel_diff):
    table = generate_observations("auburn_c", 120.0, 30.0)
    model = specialize(cheap_cnn(1), table.class_histogram(), 5, "auburn_c")
    config = FocusConfig(
        model=model, k=2, cluster_threshold=0.12, pixel_diff=pixel_diff
    )
    return table, IngestPipeline(config).run(table)


def test_pixel_diff_cuts_ingest_cost(once, benchmark):
    def run():
        return _ingest(True), _ingest(False)

    (table_on, with_pd), (table_off, without_pd) = once(benchmark, run)
    print()
    print(
        "  with pixel-diff: %d inferences (%.0f%% suppressed); without: %d"
        % (with_pd.cnn_inferences, 100 * with_pd.suppression_ratio,
           without_pd.cnn_inferences)
    )
    assert without_pd.cnn_inferences == len(table_off)
    assert with_pd.cnn_inferences < without_pd.cnn_inferences
    # ~30% suppression at 30 fps (calibrated, Section 4.2)
    assert 0.15 <= with_pd.suppression_ratio <= 0.45
    # GPU cost scales exactly with the inference count
    ratio = without_pd.ingest_gpu_seconds / with_pd.ingest_gpu_seconds
    assert ratio == pytest.approx(
        without_pd.cnn_inferences / with_pd.cnn_inferences, rel=1e-6
    )
    # suppression must not change the observation coverage of the index:
    # every observation still lands in some cluster
    assert len(with_pd.clusters.assignments) == len(table_on)
    assert (with_pd.clusters.assignments >= 0).all()
