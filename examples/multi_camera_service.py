#!/usr/bin/env python
"""Multi-camera query service: the paper's Section 5 deployment, served.

An organization points Focus at a grid of cameras and lets users query
"some or all" of them.  This example:

1. Ingests four cameras (a traffic grid plus a campus camera).
2. Fans one query across every camera with ``FocusSystem.query_all``:
   per-stream index lookups, then ONE batched GT-CNN verification round
   over the deduplicated candidate centroids, dispatched onto the GPU
   cluster's per-device work queues.
3. Repeats the query: the verification cache already holds every
   centroid verdict, so the repeat costs zero GT-CNN inferences.
4. Serves two overlapping queries concurrently with ``query_batch``,
   coalescing their shared centroids.
5. Persists all indexes to the embedded document store and cold-starts
   a second service with ``load_indexes`` -- no re-tuning, no re-ingest.

Run:  python examples/multi_camera_service.py
"""

from repro import DocumentStore, FocusSystem, QueryRequest

CAMERAS = ["auburn_c", "auburn_r", "jacksonh", "oxford"]


def show(label, answer):
    print(
        "%-28s %5d frames on %d streams | %3d GT verifications "
        "(%d candidates, %d cache hits, %d deduped) | latency %.3f s"
        % (
            label,
            answer.total_frames,
            len(answer.streams),
            answer.gt_inferences,
            answer.candidates,
            answer.cache_hits,
            answer.duplicates_coalesced,
            answer.latency_seconds,
        )
    )


def main():
    system = FocusSystem()
    print("Ingesting %d cameras ..." % len(CAMERAS))
    for camera in CAMERAS:
        handle = system.ingest_stream(camera, duration_s=120.0, fps=30.0)
        print("  %-10s -> %s" % (camera, handle.config.describe()))

    print("\nCross-stream query, cold cache:")
    show("query_all('car')", system.query_all("car"))

    print("Same query again -- every centroid verdict is cached:")
    show("query_all('car') again", system.query_all("car"))

    print("\nTwo concurrent queries sharing one verification round:")
    answers = system.query_batch(
        [
            QueryRequest("bus"),
            QueryRequest("bus", streams=CAMERAS[:2], kx=1),
        ]
    )
    show("  all cameras", answers[0])
    show("  traffic grid only, Kx=1", answers[1])

    print("\nPersisting indexes and cold-starting a second service ...")
    store = DocumentStore()
    system.save_indexes(store)
    cold = FocusSystem()
    cold.load_indexes(store)
    show("cold-start query_all('car')", cold.query_all("car"))

    print("\nServing counters and GPU ledger:")
    for key, value in sorted(system.cost_summary().items()):
        print("  %-26s %10.2f" % (key, value))


if __name__ == "__main__":
    main()
