#!/usr/bin/env python
"""Live ingest: query a camera while it is still being ingested.

Focus targets live deployments (Sections 3, 6.3): ingest runs
continuously on each feed and queries arrive at any time.  This example
plays one camera's day back as a stream of 30-second chunks:

1. Opens a live session with ``FocusSystem.open_stream`` (tuned on a
   short recorded warmup window, the way a real deployment samples a
   fresh camera).
2. A "camera loop" appends each chunk with ``FocusSystem.append``; the
   incremental clusterer and the top-K index absorb the delta in place,
   and the chunk's ingest-CNN batches land on the same GPU work queues
   query verification uses.
3. After every chunk a "query thread" polls ``query`` / ``query_all``
   at the current watermark -- answers cover everything ingested so
   far, and cached centroid verdicts keep serving because cluster
   growth never moves a centroid.
4. Each chunk ends with an incremental checkpoint: only the clusters
   added or grown since the last cursor are written, and a cold
   ``FocusSystem.load_indexes`` resumes the session at its watermark.

Run:  python examples/live_ingest.py
"""

from repro import DocumentStore, FocusSystem, generate_observations

CAMERA = "auburn_c"
DAY_SECONDS = 300.0
CHUNK_SECONDS = 30.0
FPS = 30.0


def main():
    # the full "day" of video; the camera loop below replays it in
    # 30-second chunks, the way frames would arrive from a live feed
    feed = generate_observations(CAMERA, DAY_SECONDS, FPS)

    system = FocusSystem()
    warmup = feed.scattered_sample(30.0)
    handle = system.open_stream(CAMERA, fps=FPS, tune_on=warmup)
    print(
        "Opened live session on %s (tuned on a %d-observation warmup sample)"
        % (CAMERA, len(warmup))
    )

    store = DocumentStore()
    t = 0.0
    while t < DAY_SECONDS:
        end = min(t + CHUNK_SECONDS, DAY_SECONDS)
        chunk = feed.time_range(t, end)
        report = system.append(CAMERA, chunk, watermark_s=end)

        # mid-ingest query at the current watermark
        answer = system.query(CAMERA, "car")
        fan = system.query_all("car")
        system.checkpoint(store)
        print(
            "  t=%5.0fs  +%4d obs (%4.0f%% pixel-diff) | clusters +%d new "
            "/ %d grown | 'car': %4d frames (P=%.2f R=%.2f) | "
            "cache hits %d" % (
                report.watermark_s,
                report.chunk_rows,
                100.0 * report.suppression_ratio,
                len(report.new_clusters),
                len(report.grown_clusters),
                len(answer.frames),
                answer.precision,
                answer.recall,
                fan.cache_hits,
            )
        )
        t = end

    print(
        "\nSession totals: %d observations, %d clusters, %d ingest-CNN "
        "inferences (%.1f GPU-s)" % (
            handle.ingestor.num_rows,
            handle.index.num_clusters,
            handle.ingestor.cnn_inferences,
            handle.ingestor.ingest_gpu_seconds,
        )
    )
    print("Verdict cache: %s" % system.service.cache_stats())

    # cold-start another service from the incremental checkpoints
    resumed = FocusSystem()
    resumed.load_indexes(store, tables={CAMERA: handle.table})
    answer = resumed.query(CAMERA, "car")
    print(
        "Resumed from checkpoint store: %d 'car' frames at watermark "
        "%.0f s" % (len(answer.frames), resumed.handle(CAMERA).table.duration_s)
    )


if __name__ == "__main__":
    main()
