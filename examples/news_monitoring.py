#!/usr/bin/env python
"""News monitoring: many-class streams and Opt-Query turnaround.

News channels have the most diverse class mix of the paper's streams
(50-69% of all classes appear, Section 2.2.2) and analysts want fast
turnaround on queries, so this deployment uses the *Opt-Query* policy.
The example monitors several object classes across all three news
channels and reports per-channel latency on a 10-GPU cluster, plus how
the cheap ingest keeps the monthly GPU bill down.

Run:  python examples/news_monitoring.py
"""

import numpy as np

from repro import FocusSystem, Policy
from repro.baselines import IngestAllBaseline
from repro.cnn import resnet152

CHANNELS = ("cnn", "foxnews", "msnbc")
WATCHLIST = ("suit", "flag", "microphone")


def main():
    system = FocusSystem(policy=Policy.OPT_QUERY, num_query_gpus=10)
    gt = resnet152()

    monthly_gpu_seconds = {}
    for channel in CHANNELS:
        print("Ingesting %s ..." % channel)
        handle = system.ingest_stream(channel, duration_s=300.0, fps=30.0)
        print("  configuration: %s" % handle.config.describe())
        # scale the measured window cost to a 30-day month
        scale = 30 * 24 * 3600.0 / handle.table.duration_s
        monthly_gpu_seconds[channel] = handle.ingest.ingest_gpu_seconds * scale

    print("\nWatchlist sweep (latency on a %d-GPU cluster):" % system.cluster.num_gpus)
    for channel in CHANNELS:
        for name in WATCHLIST:
            answer = system.query(channel, name)
            print(
                "  %-8s %-12s %5d frames  latency %6.3f s  "
                "(%d GT verifications)"
                % (channel, name, len(answer.frames), answer.latency_seconds,
                   answer.gt_inferences)
            )

    print("\nProjected monthly ingest GPU-hours per channel:")
    for channel in CHANNELS:
        focus_hours = monthly_gpu_seconds[channel] / 3600.0
        handle = system.handle(channel)
        ingest_all = IngestAllBaseline(gt)
        ia = ingest_all.ingest(handle.table)
        baseline_hours = ia.ingest_gpu_seconds * (30 * 24 * 3600.0 / handle.table.duration_s) / 3600.0
        print(
            "  %-8s Focus %7.1f h vs Ingest-all %8.1f h  (%.0fx cheaper)"
            % (channel, focus_hours, baseline_hours, baseline_hours / focus_hours)
        )


if __name__ == "__main__":
    main()
