#!/usr/bin/env python
"""Traffic investigation: after-the-fact queries over an intersection.

The paper's motivating scenario (Section 1): after an incident, an
investigator needs all frames with objects of certain classes from a
recorded traffic camera -- quickly, and without having paid to deep-
classify the whole stream at ingest.

This example:

* ingests a busy intersection with the *Opt-Ingest* policy (cameras are
  rarely queried, so wasted ingest work should be minimized),
* runs an investigation: find buses and trucks in a specific 2-minute
  window around the "incident",
* uses the dynamic-Kx API (Section 5) to pull a fast first batch of
  results before widening the search,
* compares the GPU cost against the Ingest-all and Query-all baselines.

Run:  python examples/traffic_investigation.py
"""

import numpy as np

from repro import FocusSystem, Policy
from repro.baselines import IngestAllBaseline, QueryAllBaseline
from repro.cnn import resnet152
from repro.video.classes import class_id

STREAM = "jacksonh"  # the busy Town Square intersection
INCIDENT_WINDOW = (120.0, 240.0)


def main():
    system = FocusSystem(policy=Policy.OPT_INGEST)
    print("Ingesting %s with the Opt-Ingest policy ..." % STREAM)
    handle = system.ingest_stream(STREAM, duration_s=360.0, fps=30.0)
    print("  configuration: %s" % handle.config.describe())

    gt = resnet152()
    ingest_all = IngestAllBaseline(gt)
    query_all = QueryAllBaseline(gt)
    ia = ingest_all.ingest(handle.table)
    query_all.ingest(handle.table)
    print(
        "  ingest GPU: Focus %.1f s vs Ingest-all %.1f s (%.0fx cheaper)"
        % (
            handle.ingest.ingest_gpu_seconds,
            ia.ingest_gpu_seconds,
            ia.ingest_gpu_seconds / handle.ingest.ingest_gpu_seconds,
        )
    )

    print("\nIncident window %s: who drove through?" % (INCIDENT_WINDOW,))
    for name in ("bus", "trailer_truck", "pickup_truck"):
        answer = system.query(STREAM, name, time_range=INCIDENT_WINDOW)
        baseline = query_all.query(STREAM, class_id(name), time_range=INCIDENT_WINDOW)
        speedup = (
            baseline.gpu_seconds / answer.result.gpu_seconds
            if answer.result.gpu_seconds
            else float("inf")
        )
        print(
            "  %-14s %4d frames in window  (GT verifications: %3d; "
            "%.0fx faster than Query-all)"
            % (name, len(answer.frames), answer.gt_inferences, speedup)
        )

    print("\nFast-first results with dynamic Kx (Section 5):")
    engine = handle.engine
    cid = int(handle.table.dominant_classes()[0])
    for result in engine.query_incremental(cid, batches=[1, handle.config.k]):
        print(
            "  Kx batch -> %4d clusters verified, %5d frames so far"
            % (result.gt_inferences, len(result.returned_frames))
        )


if __name__ == "__main__":
    main()
