#!/usr/bin/env python
"""Surveillance review: rare-class (OTHER bucket) queries and persistence.

Surveillance deployments ingest many streams that are almost never
queried, and when they are, the query is often for an *unusual* object
-- precisely the classes a per-stream specialized model folds into its
OTHER bucket (Section 4.3).  This example:

* ingests two surveillance streams,
* queries a rare class, which routes through the OTHER bucket: Focus
  fetches all OTHER-matching clusters and lets the GT-CNN pick out the
  queried class,
* persists the top-K indexes to the embedded document store (the
  MongoDB stand-in of Section 5) and reloads them, demonstrating that
  queries survive a restart.

Run:  python examples/surveillance_review.py
"""

import numpy as np

from repro import FocusSystem, Policy
from repro.core.index import TopKIndex
from repro.storage.docstore import DocumentStore
from repro.video.classes import class_name

STREAMS = ("lausanne", "sittard")


def main():
    system = FocusSystem(policy=Policy.OPT_INGEST)
    for stream in STREAMS:
        print("Ingesting %s ..." % stream)
        handle = system.ingest_stream(stream, duration_s=300.0, fps=30.0)
        print("  configuration: %s" % handle.config.describe())

    # pick a genuinely rare class: present in the video but outside the
    # specialized model's head (quiet windows may have no tail at all)
    rare_stream, rare_class = None, None
    for stream in STREAMS:
        handle = system.handle(stream)
        model = handle.config.model
        histogram = handle.table.class_histogram()
        rare = [
            c for c in sorted(histogram, key=histogram.get)
            if not (hasattr(model, "head_set") and c in model.head_set)
        ]
        if rare:
            rare_stream, rare_class = stream, rare[-1]  # most frequent tail class
            break
    if rare_stream is None:
        # every observed class is in some head; fall back to a head class
        rare_stream = STREAMS[0]
        rare_class = int(system.handle(rare_stream).table.dominant_classes()[-1])
    histogram = system.handle(rare_stream).table.class_histogram()
    print(
        "\nRare-class query on %s: %r (%d objects in the video)"
        % (rare_stream, class_name(rare_class), histogram[rare_class])
    )
    answer = system.query(rare_stream, rare_class)
    print(
        "  routed via OTHER bucket -> %d candidate clusters verified, "
        "%d frames returned (precision %.2f, recall %.2f)"
        % (
            answer.gt_inferences,
            len(answer.frames),
            answer.precision,
            answer.recall,
        )
    )

    print("\nPersisting indexes to the document store ...")
    store = DocumentStore()
    system.save_indexes(store)
    path = "/tmp/focus_indexes.json"
    store.save(path)
    print("  wrote %s (collections: %s)" % (path, ", ".join(store.collection_names())))

    reloaded = DocumentStore.load(path)
    index = TopKIndex.from_docstore(reloaded, "lausanne")
    print(
        "  reloaded lausanne index: %d clusters, %d index entries, K=%d"
        % (index.num_clusters, index.num_entries, index.k)
    )
    token = index.classes()[0]
    print(
        "  spot-check lookup for token %d -> %d clusters"
        % (token, len(index.lookup(token)))
    )


if __name__ == "__main__":
    main()
