#!/usr/bin/env python
"""Trade-off explorer: sweep the tuner and print the Pareto boundary.

Reproduces the paper's Figure 6 interactively for any stream: every
viable (model, K, T) configuration is plotted in normalized
(ingest cost, query latency) space as an ASCII scatter, with the Pareto
boundary and the three policy choices marked.

Run:  python examples/tradeoff_explorer.py [stream]
"""

import sys

from repro.cnn import resnet152
from repro.core.config import AccuracyTarget, Policy, TunerSettings
from repro.core.tuning import ParameterTuner
from repro.video.synthesis import generate_observations


def ascii_scatter(points, marks, width=64, height=20):
    """Render (x, y) points as an ASCII grid; marks overlay labels."""
    xs = [p[0] for p in points] + [p[0] for p, _ in marks]
    ys = [p[1] for p in points] + [p[1] for p, _ in marks]
    x_max = max(xs) * 1.05 or 1.0
    y_max = max(ys) * 1.05 or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = min(width - 1, int(x / x_max * (width - 1)))
        row = min(height - 1, int(y / y_max * (height - 1)))
        grid[height - 1 - row][col] = "."
    for (x, y), label in marks:
        col = min(width - 1, int(x / x_max * (width - 1)))
        row = min(height - 1, int(y / y_max * (height - 1)))
        grid[height - 1 - row][col] = label
    lines = ["  +" + "-" * width + "+"]
    for row in grid:
        lines.append("  |" + "".join(row) + "|")
    lines.append("  +" + "-" * width + "+")
    lines.append("   x: normalized ingest cost (0..%.3f)" % x_max)
    lines.append("   y: normalized query latency (0..%.3f)" % y_max)
    return "\n".join(lines)


def main():
    stream = sys.argv[1] if len(sys.argv) > 1 else "auburn_c"
    print("Sweeping the parameter space for %s ..." % stream)
    table = generate_observations(stream, 300.0, 30.0)
    sample = table.scattered_sample(TunerSettings().max_sample_seconds)
    tuner = ParameterTuner(resnet152(), AccuracyTarget())
    tuning = tuner.tune(sample, stream)

    viable = tuning.viable
    print(
        "  %d configurations evaluated, %d viable, %d on the Pareto boundary"
        % (len(tuning.candidates), len(viable), len(tuning.pareto))
    )

    marks = []
    for policy, label in (
        (Policy.OPT_INGEST, "I"),
        (Policy.BALANCE, "B"),
        (Policy.OPT_QUERY, "Q"),
    ):
        c = tuning.choose(policy)
        marks.append(((c.ingest_cost_norm, c.query_latency_norm), label))
        print(
            "  %-11s %-44s ingest %.0fx cheaper, query %.0fx faster"
            % (
                label + "=" + policy.value,
                c.config.describe(),
                1 / c.ingest_cost_norm,
                1 / c.query_latency_norm,
            )
        )

    points = [(c.ingest_cost_norm, c.query_latency_norm) for c in viable]
    print()
    print(ascii_scatter(points, marks))


if __name__ == "__main__":
    main()
