#!/usr/bin/env python
"""Sharded serving fabric: one logical service over four shard nodes.

An organization outgrows a single Focus process: streams must spread
across machines, queries must fan out across all of them, and a hot
shard must be able to hand a live stream to a colder one without
interrupting ingest or changing answers.  This example:

1. Builds a fabric of four ``ShardNode``s behind one ``FabricRouter``;
   rendezvous hashing places six cameras deterministically.
2. Ingests all cameras live (chunked, write-ahead journaled into each
   shard's own store) *through the router*.
3. Fans one query across the fleet with ``router.query_all`` and shows
   it is bit-identical to a single-node system over the same streams.
4. Checkpoints the whole fleet (one epoch per stream, per shard).
5. Migrates a live stream between shards mid-ingest -- checkpoint,
   copy, fence, recover -- keeps ingesting through the same router, and
   shows answers unchanged; the zombie source session is fenced.
6. Prints the merged fleet observability with per-shard breakdown.

Run:  python examples/sharded_fleet.py
"""

import numpy as np

from repro import (
    FabricRouter,
    DocumentStore,
    FocusConfig,
    FocusSystem,
    ShardNode,
    StaleEpochError,
    cheap_cnn,
    generate_observations,
)

CAMERAS = ["auburn_c", "auburn_r", "jacksonh", "lausanne", "oxford", "sittard"]
CONFIG = FocusConfig(model=cheap_cnn(1), k=4, cluster_threshold=0.15)
FPS = 15.0


def chunks_of(table, pieces=4):
    """Frame-aligned, stream-ordered chunks (a camera's feed)."""
    frames = table.frame_idx
    bounds = [0]
    for raw in np.linspace(0, len(table), pieces + 1).astype(int)[1:-1]:
        stop = int(raw)
        while 0 < stop < len(table) and frames[stop] == frames[stop - 1]:
            stop += 1
        if stop > bounds[-1]:
            bounds.append(stop)
    bounds.append(len(table))
    return [table.slice(a, b) for a, b in zip(bounds, bounds[1:]) if b > a]


def main():
    tables = {name: generate_observations(name, 60.0, FPS) for name in CAMERAS}
    feeds = {name: chunks_of(table) for name, table in tables.items()}

    # 1. the fabric: four shards, one router, placement persisted
    shards = [ShardNode("shard-%d" % i) for i in range(4)]
    router = FabricRouter(shards, meta_store=DocumentStore())

    # 2. live ingest through the router (first half of every feed)
    for name in CAMERAS:
        router.open_stream(name, fps=FPS, config=CONFIG, index_mode="materialized")
    for name in CAMERAS:
        for chunk in feeds[name][:2]:
            router.append(name, chunk)
    print("Placement (version %d):" % router.placement.version)
    for sid in router.shard_ids():
        print("  %-8s -> %s" % (sid, ", ".join(router.placement.streams_on(sid)) or "-"))

    # 3. scatter-gather vs a single node over the same streams
    single = FocusSystem()
    for name in CAMERAS:
        single.open_stream(name, fps=FPS, config=CONFIG, index_mode="materialized")
        for chunk in feeds[name][:2]:
            single.append(name, chunk)
    fleet, lone = router.query_all("motorcycle"), single.query_all("motorcycle")
    same = all(
        np.array_equal(fleet.slices[s].frames, lone.slices[s].frames)
        for s in CAMERAS
    )
    print(
        "\nquery_all('motorcycle'): %d frames on %d streams across %d shards "
        "(single-node identical: %s)"
        % (fleet.total_frames, len(fleet.streams), len(router.shard_ids()), same)
    )

    # 4. fleet-wide checkpoint: every stream its own epoch, its own store
    outcomes = router.checkpoint_streams()
    print("\nCheckpointed %d streams (epochs: %s)" % (
        len(outcomes), ", ".join("%s=%s" % (o.stream, o.epoch) for o in outcomes)))

    # 5. live migration mid-ingest
    victim = CAMERAS[0]
    source = router.shard_of(victim)
    target_id = next(s for s in router.shard_ids() if s != source.shard_id)
    zombie = source.handle(victim).ingestor  # a stale session object
    report = router.migrate(victim, target_id)
    print(
        "\nMigrated %r: %s -> %s (epoch %d, %d journal chunks replayed, "
        "placement v%d)"
        % (victim, report.source_shard, report.target_shard, report.epoch,
           report.replayed_chunks, router.placement.version)
    )
    for name in CAMERAS:  # ingest continues, same router surface
        for chunk in feeds[name][2:]:
            router.append(name, chunk)
            single.append(name, chunk)
    fleet, lone = router.query_all("motorcycle"), single.query_all("motorcycle")
    print("After migration + more ingest, answers still identical: %s" % all(
        np.array_equal(fleet.slices[s].frames, lone.slices[s].frames)
        for s in CAMERAS
    ))
    try:
        zombie.checkpoint(source.store)
    except StaleEpochError:
        print("Zombie source session fenced by StaleEpochError (as designed)")

    # 6. merged observability with per-shard breakdown
    print("\nFleet cost summary (merged):")
    merged = router.cost_summary(per_shard=True)
    for key, value in sorted(merged["total"].items()):
        print("  %-34s %12.2f" % (key, value))
    print("Verification cache, fleet-wide: %s" % router.cache_stats())


if __name__ == "__main__":
    main()
