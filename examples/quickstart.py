#!/usr/bin/env python
"""Quickstart: ingest one camera stream and query it for cars.

This is the 60-second tour of the Focus reproduction:

1. Build a FocusSystem with the default GT-CNN (ResNet152 simulator),
   95%/95% accuracy targets and the Balance policy.
2. Ingest five minutes of a busy traffic intersection.  Behind the
   scenes Focus samples the stream, labels the sample with the GT-CNN,
   tunes (cheap CNN, K, Ls, T), runs the cheap specialized CNN over
   every detected object, clusters similar objects, and builds the
   top-K index.
3. Query for "car": Focus looks up matching clusters, verifies only
   their centroids with the GT-CNN, and returns the frames.

Run:  python examples/quickstart.py
"""

from repro import FocusSystem

STREAM = "auburn_c"  # a commercial-area intersection (Table 1)


def main():
    system = FocusSystem()

    print("Ingesting 5 minutes of %s ..." % STREAM)
    handle = system.ingest_stream(STREAM, duration_s=300.0, fps=30.0)
    print("  chose configuration: %s" % handle.config.describe())
    print(
        "  %d objects -> %d clusters; ingest GPU time %.1f s"
        % (
            len(handle.table),
            handle.ingest.clusters.num_clusters,
            handle.ingest.ingest_gpu_seconds,
        )
    )

    from repro.video.classes import class_name

    top_classes = [class_name(c) for c in handle.table.dominant_classes()[:3]]
    for query_class in top_classes:
        answer = system.query(STREAM, query_class)
        print(
            "query %-10s -> %5d frames, %3d GT-CNN verifications, "
            "latency %.2f s on %d GPUs (precision %.2f, recall %.2f)"
            % (
                repr(query_class),
                len(answer.frames),
                answer.gt_inferences,
                answer.latency_seconds,
                system.cluster.num_gpus,
                answer.precision,
                answer.recall,
            )
        )

    print("\nGPU-time ledger (seconds by category):")
    for category, seconds in sorted(system.cost_summary().items()):
        print("  %-16s %8.2f" % (category, seconds))


if __name__ == "__main__":
    main()
