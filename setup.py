"""Setup shim.

This environment has no ``wheel`` package, so PEP 517 editable installs
(``pip install -e .``) cannot build. ``python setup.py develop`` and
``pip install -e . --no-build-isolation`` (with wheel present) both
work; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
